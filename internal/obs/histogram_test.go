package obs

import (
	"math"
	"testing"
	"time"
)

// TestHistogramQuantiles checks that percentile estimates land within one
// log-bucket of the true value across a few magnitudes.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations: 900 at ~1ms, 90 at ~10ms, 10 at ~100ms.
	for i := 0; i < 900; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	d := h.Data()
	if d.Count != 1000 {
		t.Fatalf("count = %d, want 1000", d.Count)
	}
	wantSum := int64(900)*1e6 + 90*1e7 + 10*1e8
	if d.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", d.Sum, wantSum)
	}
	within := func(got, want int64) bool {
		// Log-bucketed: accept a factor-of-2 band around the true value.
		return float64(got) >= float64(want)/2 && float64(got) <= float64(want)*2
	}
	if p50 := d.Quantile(0.50); !within(p50, 1e6) {
		t.Errorf("p50 = %d, want ~1e6", p50)
	}
	if p99 := d.Quantile(0.99); !within(p99, 1e7) && !within(p99, 1e8) {
		t.Errorf("p99 = %d, want ~1e7..1e8", p99)
	}
	if p999 := d.Quantile(0.999); !within(p999, 1e8) {
		t.Errorf("p99.9 = %d, want ~1e8", p999)
	}
}

// TestHistogramQuantileMonotone: quantiles never decrease in p, and the
// estimate for a single-valued distribution is within its bucket.
func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	d := h.Data()
	prev := int64(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := d.Quantile(p)
		if q < prev {
			t.Fatalf("quantile(%v) = %d < quantile(prev) = %d", p, q, prev)
		}
		prev = q
	}
}

// TestHistogramMerge: merging two histograms equals observing the union.
func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for i := 0; i < 500; i++ {
		a.Observe(time.Millisecond)
		both.Observe(time.Millisecond)
	}
	for i := 0; i < 500; i++ {
		b.Observe(20 * time.Millisecond)
		both.Observe(20 * time.Millisecond)
	}
	da, db, dboth := a.Data(), b.Data(), both.Data()
	da.Merge(db)
	if da.Count != dboth.Count || da.Sum != dboth.Sum {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", da.Count, da.Sum, dboth.Count, dboth.Sum)
	}
	if da.Buckets != dboth.Buckets {
		t.Fatalf("merged buckets differ from combined observation")
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		if da.Quantile(p) != dboth.Quantile(p) {
			t.Fatalf("quantile(%v): merged %d != combined %d", p, da.Quantile(p), dboth.Quantile(p))
		}
	}
	if da.Max != dboth.Max {
		t.Fatalf("merged max = %d, want %d", da.Max, dboth.Max)
	}
}

// TestHistogramWindowedMax: the max reflects recent observations, not a
// lifetime high-water mark (it must decay once the window rotates past).
func TestHistogramWindowedMax(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Second)
	if got := h.windowedMax(); got != (5 * time.Second).Nanoseconds() {
		t.Fatalf("windowedMax = %d right after observe, want 5s", got)
	}
	// Simulate the window rotating past every slot: age all epochs beyond
	// the window instead of sleeping 2 minutes.
	for i := range h.win {
		h.win[i].epoch.Add(-int64(winSlots + 1))
	}
	if got := h.windowedMax(); got != 0 {
		t.Fatalf("windowedMax = %d after window rotation, want 0 (decayed)", got)
	}
	h.Observe(time.Millisecond)
	if got := h.windowedMax(); got != time.Millisecond.Nanoseconds() {
		t.Fatalf("windowedMax = %d after new observe, want 1ms", got)
	}
}

// TestHistogramSnapshotAvg checks the derived average.
func TestHistogramSnapshotAvg(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.AvgNS != 0 || s.Count != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	if s := h.Snapshot(); s.AvgNS != 3e6 {
		t.Fatalf("avg = %d, want 3e6", s.AvgNS)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many goroutines
// (meaningful under -race) and checks nothing is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 2000
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(1+(w*per+i)%1000) * time.Microsecond)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	d := h.Data()
	if d.Count != workers*per {
		t.Fatalf("count = %d, want %d", d.Count, workers*per)
	}
	var bucketSum int64
	for _, n := range d.Buckets {
		bucketSum += n
	}
	if bucketSum != d.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, d.Count)
	}
	if math.IsNaN(float64(d.Quantile(0.5))) || d.Quantile(0.5) <= 0 {
		t.Fatalf("p50 = %d, want > 0", d.Quantile(0.5))
	}
}
