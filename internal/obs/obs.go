// Package obs is the fleet's dependency-free observability layer: lightweight
// spans with cross-process traceparent propagation, log-bucketed latency
// histograms, sampled solver progress timelines, and a ring buffer of
// finished traces behind GET /v1/debug/traces.
//
// Design constraints, in order:
//
//   - Zero hot-path cost when a request is sampled out. Every span operation
//     is a nil-receiver no-op, so instrumented code calls StartSpan/SetAttr/
//     End unconditionally and the unsampled path pays one context lookup per
//     span site — never an allocation, never a lock.
//   - One trace per request across tiers. A gateway forwards a
//     `traceparent`-style header (`00-<trace id>-<parent span id>-01`) to its
//     backend; the backend's spans come back in the wire response and are
//     grafted under the gateway's proxy span, so /v1/debug/traces on the
//     gateway shows gateway, backend, per-block and per-depth spans as one
//     tree. Span IDs are random 64-bit values, so cross-process grafting
//     needs no renumbering.
//   - Concurrency-safe recording. Blocks solve on a worker pool and portfolio
//     racers run concurrently; spans parent through the context and finished
//     spans append to the trace under a small mutex, so the tree assembles
//     correctly whatever the interleaving.
//
// The span *data* model is flat: each span records its parent ID and the tree
// is assembled at read time (Tree), which keeps recording lock-cheap and
// makes cross-tier merging an append.
package obs

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Tracer. The zero value means "trace every request" with
// default ring sizes and no slow-solve logging.
type Config struct {
	// SampleEvery traces one request in N (1 = every request, the default;
	// negative disables tracing entirely). Requests carrying a traceparent
	// header are always traced regardless — the upstream tier already made
	// the sampling decision.
	SampleEvery int
	// RingSize bounds the recent-traces ring (default 64).
	RingSize int
	// SlowRingSize bounds the slowest-traces ring (default 16).
	SlowRingSize int
	// SlowThreshold, when positive, logs every finished trace at least this
	// slow through Logger, span tree included.
	SlowThreshold time.Duration
	// Logger receives slow-trace dumps (default slog.Default when a
	// threshold is set).
	Logger *slog.Logger
	// ProgressEvery is the solver progress sampling interval in conflicts
	// (default 1024).
	ProgressEvery int64
	// MaxProgress caps progress samples retained per trace (default 512);
	// beyond it samples are dropped and counted.
	MaxProgress int
}

func (c Config) withDefaults() Config {
	if c.SampleEvery == 0 {
		c.SampleEvery = 1
	}
	if c.RingSize <= 0 {
		c.RingSize = 64
	}
	if c.SlowRingSize <= 0 {
		c.SlowRingSize = 16
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 1024
	}
	if c.MaxProgress <= 0 {
		c.MaxProgress = 512
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Tracer makes sampling decisions and owns the finished-trace rings. One per
// process tier (server, gateway, CLI).
type Tracer struct {
	cfg     Config
	counter atomic.Uint64
	ring    *ring
}

// New builds a tracer.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{cfg: cfg, ring: newRing(cfg.RingSize, cfg.SlowRingSize)}
}

// Remote identifies the upstream span a request arrived under, parsed from a
// traceparent header. The zero value means "no upstream trace".
type Remote struct {
	TraceID  string
	ParentID uint64
}

// StartTrace begins a trace rooted at a span called name, if this request is
// sampled in (or arrives with a Remote, which forces tracing). It returns a
// derived context carrying the root span, and the root span itself — nil
// when the request was sampled out, which every downstream span operation
// tolerates. Finish the root with Span.Finish.
func (t *Tracer) StartTrace(ctx context.Context, name string, remote *Remote) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if remote == nil {
		if t.cfg.SampleEvery < 0 {
			return ctx, nil
		}
		if t.cfg.SampleEvery > 1 && t.counter.Add(1)%uint64(t.cfg.SampleEvery) != 0 {
			return ctx, nil
		}
	}
	tr := &Trace{tracer: t, start: time.Now()}
	var parent uint64
	if remote != nil && remote.TraceID != "" {
		tr.traceID = remote.TraceID
		tr.remote = true
		parent = remote.ParentID
	} else {
		tr.traceID = newTraceID()
	}
	sp := &Span{trace: tr, id: newSpanID(), parent: parent, name: name, start: tr.start, root: true}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// Traces snapshots the finished-trace rings (recent newest-first, slowest
// descending) in wire form.
func (t *Tracer) Traces() TracesJSON {
	if t == nil {
		return TracesJSON{}
	}
	recent, slowest := t.ring.snapshot()
	out := TracesJSON{
		Recent:  make([]*TraceJSON, 0, len(recent)),
		Slowest: make([]*TraceJSON, 0, len(slowest)),
	}
	for _, td := range recent {
		out.Recent = append(out.Recent, td.JSON())
	}
	for _, td := range slowest {
		out.Slowest = append(out.Slowest, td.JSON())
	}
	return out
}

// Trace is one in-flight request's span collector. Spans append under mu as
// they finish; the tree is assembled only at read time.
type Trace struct {
	tracer  *Tracer
	traceID string
	remote  bool // arrived with a traceparent: upstream wants the spans back
	start   time.Time

	mu              sync.Mutex
	spans           []SpanData
	progress        []ProgressSample
	progressDropped int64
}

// Span is one timed operation within a trace. All methods are safe on a nil
// receiver (the sampled-out case). A span must be ended by the goroutine
// that started it; distinct spans of one trace may end concurrently.
type Span struct {
	trace  *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	root   bool
	ended  bool
}

// Attr is one span annotation.
type Attr struct {
	Key, Val string
}

type spanKey struct{}

// FromContext returns the current span, or nil when the request is untraced.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Active reports whether ctx carries a sampled-in trace.
func Active(ctx context.Context) bool { return FromContext(ctx) != nil }

// StartSpan opens a child of the context's current span and returns a context
// carrying it. On an untraced context it returns (ctx, nil) — zero cost
// beyond the context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{trace: parent.trace, id: newSpanID(), parent: parent.id, name: name, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SetAttr annotates the span. Call before End, from the span's goroutine.
func (sp *Span) SetAttr(key, val string) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, Attr{key, val})
}

// SetAttrInt annotates the span with an integer value.
func (sp *Span) SetAttrInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, Attr{key, strconv.FormatInt(v, 10)})
}

// End records the span into its trace. No-op on nil or double End. Ending a
// root span finalizes the whole trace (prefer Finish there, which also
// returns the finished data).
func (sp *Span) End() {
	if sp == nil || sp.ended {
		return
	}
	if sp.root {
		sp.Finish()
		return
	}
	sp.ended = true
	tr := sp.trace
	sd := SpanData{
		ID:       sp.id,
		Parent:   sp.parent,
		Name:     sp.name,
		Start:    sp.start,
		Duration: time.Since(sp.start),
		Attrs:    sp.attrs,
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, sd)
	tr.mu.Unlock()
}

// Finish ends a root span and finalizes its trace: the finished trace is
// pushed onto the tracer's rings, slow-logged when over the configured
// threshold, and returned (nil for nil/non-root/already-ended spans).
func (sp *Span) Finish() *TraceData {
	if sp == nil || !sp.root || sp.ended {
		return nil
	}
	sp.ended = true
	tr := sp.trace
	dur := time.Since(sp.start)
	root := SpanData{
		ID:       sp.id,
		Parent:   sp.parent,
		Name:     sp.name,
		Start:    sp.start,
		Duration: dur,
		Attrs:    sp.attrs,
	}
	tr.mu.Lock()
	spans := append([]SpanData{root}, tr.spans...)
	progress := tr.progress
	dropped := tr.progressDropped
	tr.mu.Unlock()
	td := &TraceData{
		TraceID:         tr.traceID,
		Name:            sp.name,
		Start:           sp.start,
		Duration:        dur,
		Spans:           spans,
		Progress:        progress,
		ProgressDropped: dropped,
	}
	t := tr.tracer
	t.ring.add(td)
	if t.cfg.SlowThreshold > 0 && dur >= t.cfg.SlowThreshold {
		t.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "slow solve",
			slog.String("trace_id", td.TraceID),
			slog.String("name", td.Name),
			slog.Duration("duration", dur),
			slog.Int("spans", len(td.Spans)),
			slog.Int("progress_samples", len(td.Progress)),
			slog.String("tree", td.Render()),
		)
	}
	return td
}

// Merge grafts a downstream tier's finished spans and progress samples into
// this span's trace. The downstream root's Parent was set from the
// traceparent this tier sent, so the grafted subtree hangs off the right
// local span without renumbering. Safe on nil.
func (sp *Span) Merge(spans []SpanData, progress []ProgressSample) {
	if sp == nil || (len(spans) == 0 && len(progress) == 0) {
		return
	}
	tr := sp.trace
	tr.mu.Lock()
	tr.spans = append(tr.spans, spans...)
	tr.progress = append(tr.progress, progress...)
	tr.mu.Unlock()
}

// ProgressSample is one point of a solve's in-search timeline.
type ProgressSample struct {
	Time         time.Time
	Block        int // block index within the solve
	Bound        int // current SAP depth bound under decision
	LB           int // proven lower bound on the block's depth
	Conflicts    int64
	Restarts     int64
	Propagations int64
	Learnts      int // retained learnt clauses
}

// progressSink is a per-request consumer of solver progress samples attached
// to the context independently of tracing — the bridge that feeds live job
// event streams without requiring the request to be sampled into a trace.
type progressSink struct {
	every int64
	fn    func(ProgressSample)
}

type progressSinkKey struct{}

// WithProgressSink returns a context whose solve delivers progress samples to
// fn every `every` conflicts (<=0 means the 1024 default), in addition to any
// trace the context carries. fn is called from solver goroutines — it must be
// safe for concurrent use and must not block (drop, don't queue).
func WithProgressSink(ctx context.Context, every int64, fn func(ProgressSample)) context.Context {
	if fn == nil {
		return ctx
	}
	if every <= 0 {
		every = 1024
	}
	return context.WithValue(ctx, progressSinkKey{}, &progressSink{every: every, fn: fn})
}

func sinkFromContext(ctx context.Context) *progressSink {
	sink, _ := ctx.Value(progressSinkKey{}).(*progressSink)
	return sink
}

// AddProgress delivers a solver progress sample to the context's progress
// sink (if any) and appends it to the context's trace, bounded by the
// tracer's MaxProgress cap. No-op on contexts with neither.
func AddProgress(ctx context.Context, s ProgressSample) {
	if sink := sinkFromContext(ctx); sink != nil {
		sink.fn(s)
	}
	sp := FromContext(ctx)
	if sp == nil {
		return
	}
	tr := sp.trace
	max := 512
	if t := tr.tracer; t != nil {
		max = t.cfg.MaxProgress
	}
	tr.mu.Lock()
	if len(tr.progress) < max {
		tr.progress = append(tr.progress, s)
	} else {
		tr.progressDropped++
	}
	tr.mu.Unlock()
}

// ProgressEvery returns the progress sampling interval for the context: the
// tracer's interval when traced, the sink's when a sink is attached (the
// smaller of the two when both), or 0 when neither — callers then skip
// installing hooks entirely.
func ProgressEvery(ctx context.Context) int64 {
	var every int64
	if sink := sinkFromContext(ctx); sink != nil {
		every = sink.every
	}
	sp := FromContext(ctx)
	if sp == nil {
		return every
	}
	traced := int64(1024)
	if t := sp.trace.tracer; t != nil {
		traced = t.cfg.ProgressEvery
	}
	if every == 0 || traced < every {
		return traced
	}
	return every
}

// IsRemote reports whether the span's trace arrived with a traceparent — the
// signal that the upstream tier wants the finished spans returned in the
// response body.
func (sp *Span) IsRemote() bool { return sp != nil && sp.trace.remote }

// ---------------------------------------------------------------------------
// traceparent propagation.

// Traceparent renders the header value that hands this context's current
// span to a downstream tier ("" when untraced). Format mirrors W3C
// trace-context: version 00, 32-hex trace ID, 16-hex parent span ID,
// flags 01 (sampled — unsampled requests send no header at all).
func Traceparent(ctx context.Context) string {
	sp := FromContext(ctx)
	if sp == nil {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", sp.trace.traceID, sp.id)
}

// ParseTraceparent parses a traceparent header; ok is false on empty or
// malformed values (the request then starts its own trace, or none).
func ParseTraceparent(h string) (Remote, bool) {
	parts := strings.Split(h, "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return Remote{}, false
	}
	if !isHex(parts[1]) || parts[1] == strings.Repeat("0", 32) {
		return Remote{}, false
	}
	parent, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil || parent == 0 {
		return Remote{}, false
	}
	return Remote{TraceID: parts[1], ParentID: parent}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

func newTraceID() string {
	return fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64())
}

func newSpanID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}
