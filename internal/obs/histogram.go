package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is one bucket per bit length of the nanosecond value (0..63),
// i.e. power-of-two bucket boundaries: bucket i holds values in
// [2^(i-1), 2^i). That bounds quantile estimation error to the bucket width
// (≤ ~41% relative at the geometric midpoint) while costing one atomic add
// per observation — the right trade for latency monitoring, where the
// interesting signal is orders of magnitude, not microseconds.
const histBuckets = 64

// Windowed-max bookkeeping: the max decays by rotating through winSlots
// time slots of winSlotDur each, so the reported max covers the last
// winSlots×winSlotDur (~2 minutes) instead of the whole process lifetime —
// the /v1/metrics max_ns staleness fix.
const (
	winSlots   = 8
	winSlotDur = 15 // seconds
)

// Histogram is a lock-free log-bucketed latency histogram with a windowed
// max. The zero value is ready to use; do not copy after first use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
	win     [winSlots]winSlot
}

type winSlot struct {
	epoch atomic.Int64 // unix seconds / winSlotDur when the slot was last reset
	max   atomic.Int64
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bits.Len64(uint64(ns))&(histBuckets-1)].Add(1)

	epoch := time.Now().Unix() / winSlotDur
	slot := &h.win[int(epoch%winSlots)]
	if old := slot.epoch.Load(); old != epoch {
		// Benign race: a concurrent Observe may land between the swap and
		// the reset and lose its max for this slot — acceptable for a
		// monitoring max, and it self-corrects within one slot duration.
		if slot.epoch.CompareAndSwap(old, epoch) {
			slot.max.Store(0)
		}
	}
	for {
		cur := slot.max.Load()
		if ns <= cur || slot.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// windowedMax returns the max over the slots still inside the window.
func (h *Histogram) windowedMax() int64 {
	epoch := time.Now().Unix() / winSlotDur
	var max int64
	for i := range h.win {
		if e := h.win[i].epoch.Load(); e > epoch-winSlots && e <= epoch {
			if m := h.win[i].max.Load(); m > max {
				max = m
			}
		}
	}
	return max
}

// HistogramData is a point-in-time copy of a histogram's counters — the
// mergeable form (the gateway merges per-backend histograms into a
// fleet-wide one).
type HistogramData struct {
	Count   int64
	Sum     int64
	Max     int64 // windowed max at capture time
	Buckets [histBuckets]int64
}

// Data captures the histogram's counters. Loads are not mutually atomic;
// the snapshot is eventually consistent, which monitoring tolerates.
func (h *Histogram) Data() HistogramData {
	var d HistogramData
	d.Count = h.count.Load()
	d.Sum = h.sum.Load()
	d.Max = h.windowedMax()
	for i := range d.Buckets {
		d.Buckets[i] = h.buckets[i].Load()
	}
	return d
}

// Merge folds another histogram's counters into d (max combines as max).
func (d *HistogramData) Merge(o HistogramData) {
	d.Count += o.Count
	d.Sum += o.Sum
	if o.Max > d.Max {
		d.Max = o.Max
	}
	for i := range d.Buckets {
		d.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) in nanoseconds: walk the
// buckets to the one containing the rank, report its geometric midpoint
// (3·2^(i-2) for bucket i, whose range is [2^(i-1), 2^i)).
func (d HistogramData) Quantile(p float64) int64 {
	if d.Count == 0 {
		return 0
	}
	rank := int64(p * float64(d.Count))
	if rank >= d.Count {
		rank = d.Count - 1
	}
	var cum int64
	for i, n := range d.Buckets {
		cum += n
		if cum > rank {
			if i <= 1 {
				return int64(i) // buckets 0 and 1 hold exactly 0 and 1 ns
			}
			return 3 << (i - 2)
		}
	}
	return 0
}

// HistSnapshot is the JSON form of a histogram in /v1/metrics.
type HistSnapshot struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	AvgNS int64 `json:"avg_ns"`
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
	// MaxNS is windowed: the largest observation of the last ~2 minutes,
	// not a lifetime high-water mark.
	MaxNS int64 `json:"max_ns"`
}

// Snapshot derives the percentile summary.
func (d HistogramData) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: d.Count,
		SumNS: d.Sum,
		P50NS: d.Quantile(0.50),
		P90NS: d.Quantile(0.90),
		P99NS: d.Quantile(0.99),
		MaxNS: d.Max,
	}
	if d.Count > 0 {
		s.AvgNS = d.Sum / d.Count
	}
	return s
}

// Snapshot is Data().Snapshot() — the common read path.
func (h *Histogram) Snapshot() HistSnapshot { return h.Data().Snapshot() }
