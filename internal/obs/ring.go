package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// ring holds the finished traces behind /v1/debug/traces: a circular buffer
// of the most recent N plus a separate top-K by duration, so one slow solve
// stays inspectable after a burst of fast requests has lapped the recent
// ring.
type ring struct {
	mu      sync.Mutex
	recent  []*TraceData // circular; next is the write position
	next    int
	filled  bool
	slowest []*TraceData // ascending by duration, ≤ slowCap entries
	slowCap int
}

func newRing(recentCap, slowCap int) *ring {
	return &ring{recent: make([]*TraceData, recentCap), slowCap: slowCap}
}

func (r *ring) add(td *TraceData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recent[r.next] = td
	r.next++
	if r.next == len(r.recent) {
		r.next, r.filled = 0, true
	}
	if len(r.slowest) < r.slowCap {
		r.slowest = append(r.slowest, td)
		sort.Slice(r.slowest, func(i, j int) bool { return r.slowest[i].Duration < r.slowest[j].Duration })
		return
	}
	if td.Duration > r.slowest[0].Duration {
		r.slowest[0] = td
		sort.Slice(r.slowest, func(i, j int) bool { return r.slowest[i].Duration < r.slowest[j].Duration })
	}
}

// snapshot returns the recent traces newest-first and the slowest traces
// slowest-first.
func (r *ring) snapshot() (recent, slowest []*TraceData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.recent)
	}
	recent = make([]*TraceData, 0, n)
	for i := 1; i <= n; i++ {
		recent = append(recent, r.recent[(r.next-i+len(r.recent))%len(r.recent)])
	}
	slowest = make([]*TraceData, len(r.slowest))
	for i, td := range r.slowest {
		slowest[len(r.slowest)-1-i] = td
	}
	return recent, slowest
}

// DebugMux returns a fresh mux exposing net/http/pprof and expvar — wired by
// the daemons onto a separate -debug-addr listener, never the serving port
// (profiles and goroutine dumps must not be reachable by solve clients).
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
