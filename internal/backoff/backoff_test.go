package backoff

import (
	"testing"
	"time"
)

func TestJitterBounds(t *testing.T) {
	const d = 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := Jitter(d)
		if j < d-d/4 || j >= d+d/4+1 {
			t.Fatalf("Jitter(%v) = %v outside [0.75d, 1.25d]", d, j)
		}
	}
	if Jitter(0) != 0 || Jitter(-time.Second) != -time.Second {
		t.Fatal("non-positive durations must pass through unchanged")
	}
}

func TestDelayGrowthAndCaps(t *testing.T) {
	const base = 100 * time.Millisecond
	// Growth: each step's nominal value doubles until Shift caps it. Jitter
	// is ±25%, so comparing against 0.75/1.25 of the nominal is exact.
	for fails := 0; fails <= Shift+3; fails++ {
		shift := fails
		if shift > Shift {
			shift = Shift
		}
		nominal := base << shift
		d := Delay(base, fails, 0)
		if d < nominal-nominal/4 || d >= nominal+nominal/4+1 {
			t.Fatalf("Delay(base, %d, 0) = %v, nominal %v", fails, d, nominal)
		}
	}
	// max clamps the pre-jitter value.
	const max = 300 * time.Millisecond
	for i := 0; i < 100; i++ {
		if d := Delay(base, Shift, max); d >= max+max/4+1 {
			t.Fatalf("Delay with max %v returned %v", max, d)
		}
	}
	// Negative fails behaves like zero.
	if d := Delay(base, -5, 0); d < base-base/4 || d >= base+base/4+1 {
		t.Fatalf("Delay with negative fails = %v", d)
	}
}
