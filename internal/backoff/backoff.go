// Package backoff is the fleet's shared retry arithmetic: jittered
// exponential delays used by the gateway's circuit breaker and probe loops
// and by the daemon's webhook deliverer. Keeping it in one place keeps the
// retry behavior uniform — every component that hammers a struggling peer
// backs off on the same curve, desynchronized by the same jitter.
package backoff

import (
	"math/rand"
	"time"
)

// Shift caps exponential growth at 2^Shift (64×).
const Shift = 6

// Jitter spreads d uniformly over [0.75d, 1.25d) so a fleet of clients (or
// one process's many retry loops) never synchronizes its retries into
// thundering herds against a recovering peer.
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d - d/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}

// Delay is the jittered exponential schedule: base doubled per failure
// (capped at 2^Shift×), clamped to max when max > 0, then jittered. fails
// counts consecutive failures so far, so the first retry (fails 0) waits
// about base.
func Delay(base time.Duration, fails int, max time.Duration) time.Duration {
	if fails < 0 {
		fails = 0
	}
	if fails > Shift {
		fails = Shift
	}
	d := base << fails
	if max > 0 && d > max {
		d = max
	}
	return Jitter(d)
}
