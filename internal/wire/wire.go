// Package wire defines the JSON schema shared by the ebmfd service and the
// ebmf CLI: one request shape (matrix + per-request options) and one result
// shape (depth, provenance, partition). Keeping it in a single package means
// a client can drive the CLI and the daemon interchangeably — `ebmf -json`
// prints exactly what `POST /v1/solve` returns.
package wire

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/obs"
	"repro/internal/portfolio"
)

// SolveRequest is the body of POST /v1/solve (and one element of a batch).
// Exactly one of Matrix and Rows must be set.
type SolveRequest struct {
	// Matrix is the pattern in text form: rows of '0'/'1' characters
	// separated by newlines (the bitmat.Parse format).
	Matrix string `json:"matrix,omitempty"`
	// Rows is the pattern as explicit 0/1 rows.
	Rows [][]int `json:"rows,omitempty"`
	// Options tunes this request; nil means server/CLI defaults.
	Options *SolveOptions `json:"options,omitempty"`
}

// SolveOptions is the per-request subset of core.Options exposed on the
// wire. Zero values mean "use the default".
type SolveOptions struct {
	// Trials overrides the row-packing trial count.
	Trials int `json:"trials,omitempty"`
	// Encoding selects the CNF compilation: "onehot" (default) or "log".
	Encoding string `json:"encoding,omitempty"`
	// AMO selects the at-most-one handling of the one-hot compilation:
	// "native" (default — the solver's built-in propagator), "pairwise" or
	// "sequential" (the encoded ablations).
	AMO string `json:"amo,omitempty"`
	// ConflictBudget bounds total SAT conflicts (<0 forces unlimited where
	// the deployment allows it; 0 keeps the default).
	ConflictBudget int64 `json:"conflict_budget,omitempty"`
	// TimeoutMS bounds solve wall-clock time in milliseconds.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Heuristic skips the exact SAT stage.
	Heuristic bool `json:"heuristic,omitempty"`
	// Portfolio races K diverse solver strategies per block (0 keeps the
	// single-strategy default; servers clamp K to their configured
	// maximum).
	Portfolio int `json:"portfolio,omitempty"`
	// PortfolioStrategies names the racing set explicitly ("canonical"
	// plus names from portfolio.Names()); empty means a default diverse
	// set seeded from each block's fingerprint. Setting it implies racing
	// even when Portfolio is 0.
	PortfolioStrategies []string `json:"portfolio_strategies,omitempty"`
	// ShareClauses exchanges short learnt clauses between racers.
	ShareClauses bool `json:"share_clauses,omitempty"`
}

// ErrNoMatrix is returned when a request carries neither form of the matrix.
var ErrNoMatrix = errors.New("wire: request has neither \"matrix\" nor \"rows\"")

// ParseMatrix materializes the request's pattern matrix.
func (r *SolveRequest) ParseMatrix() (*bitmat.Matrix, error) {
	switch {
	case r.Matrix != "" && r.Rows != nil:
		return nil, errors.New("wire: request sets both \"matrix\" and \"rows\"")
	case r.Matrix != "":
		return bitmat.Parse(r.Matrix)
	case r.Rows != nil:
		if len(r.Rows) == 0 || len(r.Rows[0]) == 0 {
			return nil, errors.New("wire: zero-dimension \"rows\"")
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Rows[0]) {
				return nil, errors.New("wire: ragged \"rows\"")
			}
			for _, v := range row {
				if v != 0 && v != 1 {
					return nil, fmt.Errorf("wire: non-binary entry %d in \"rows\"", v)
				}
			}
		}
		return bitmat.FromRows(r.Rows), nil
	default:
		return nil, ErrNoMatrix
	}
}

// Apply overlays the wire options onto a base configuration and returns the
// effective core options plus the requested timeout (0 = none requested).
func (o *SolveOptions) Apply(base core.Options) (core.Options, time.Duration, error) {
	if o == nil {
		return base, 0, nil
	}
	opts := base
	if o.Trials > 0 {
		opts.Packing.Trials = o.Trials
	}
	switch o.Encoding {
	case "": // keep the base configuration's encoding
	case "onehot":
		opts.Encoding = core.EncodingOneHot
	case "log":
		opts.Encoding = core.EncodingLog
	default:
		return opts, 0, fmt.Errorf("wire: unknown encoding %q", o.Encoding)
	}
	if o.AMO != "" {
		amo, err := encode.ParseAMO(o.AMO)
		if err != nil {
			return opts, 0, fmt.Errorf("wire: %w", err)
		}
		opts.AMO = amo
	}
	if o.ConflictBudget != 0 {
		opts.ConflictBudget = o.ConflictBudget
		if opts.ConflictBudget < 0 {
			opts.ConflictBudget = 0 // core convention: <=0 is unlimited
		}
	}
	opts.SkipSAT = opts.SkipSAT || o.Heuristic
	if o.Portfolio > 0 {
		opts.Portfolio.Size = o.Portfolio
	}
	if len(o.PortfolioStrategies) > 0 {
		// Validate names here so a typo is a 400, not a mid-solve error.
		if _, err := portfolio.Resolve(portfolio.Canonical(), o.PortfolioStrategies); err != nil {
			return opts, 0, err
		}
		opts.Portfolio.Strategies = o.PortfolioStrategies
	}
	if o.ShareClauses {
		opts.Portfolio.ShareClauses = true
	}
	var timeout time.Duration
	if o.TimeoutMS > 0 {
		timeout = time.Duration(o.TimeoutMS) * time.Millisecond
	}
	return opts, timeout, nil
}

// RectJSON is one combinatorial rectangle as explicit index lists.
type RectJSON struct {
	Rows []int `json:"rows"`
	Cols []int `json:"cols"`
}

// ResultJSON is the wire form of core.Result — the body of a /v1/solve
// response and of `ebmf -json` output.
type ResultJSON struct {
	Depth          int            `json:"depth"`
	Optimal        bool           `json:"optimal"`
	Certificate    string         `json:"certificate"`
	RankLB         int            `json:"rank_lb"`
	FoolingLB      int            `json:"fooling_lb"`
	HeuristicDepth int            `json:"heuristic_depth"`
	Blocks         int            `json:"blocks"`
	TimedOut       bool           `json:"timed_out,omitempty"`
	Canceled       bool           `json:"canceled,omitempty"`
	CacheHit       bool           `json:"cache_hit"`
	SATCalls       int            `json:"sat_calls"`
	Conflicts      int64          `json:"conflicts"`
	PackNS         int64          `json:"pack_ns"`
	SATNS          int64          `json:"sat_ns"`
	Fingerprint    string         `json:"fingerprint,omitempty"`
	Portfolio      *PortfolioJSON `json:"portfolio,omitempty"`
	// Trace carries the serving tier's finished span tree back to the
	// requester. Attached only when the request arrived with a traceparent
	// header (a gateway asking for the spans to stitch into its own trace);
	// gateways strip it before caching or answering clients.
	Trace     *obs.TraceJSON `json:"trace,omitempty"`
	Partition []RectJSON     `json:"partition"`
}

// PortfolioJSON is the wire form of core.PortfolioStats (present only when
// the solve raced).
type PortfolioJSON struct {
	// Wins counts race-round wins per strategy name.
	Wins map[string]int `json:"wins"`
	// BlockWinners is the deciding strategy per block, in block order.
	BlockWinners []string `json:"block_winners"`
	// CancelledConflicts is the work spent by cancelled racers.
	CancelledConflicts int64 `json:"cancelled_conflicts"`
	// SharedClauseExports and SharedClauseImports count exchange traffic.
	SharedClauseExports int64 `json:"shared_clause_exports"`
	SharedClauseImports int64 `json:"shared_clause_imports"`
}

// FromResult converts a solver result to its wire form. fingerprint may be
// empty (it is filled by layers that computed one).
func FromResult(res *core.Result, fingerprint string) *ResultJSON {
	out := &ResultJSON{
		Depth:          res.Depth,
		Optimal:        res.Optimal,
		Certificate:    res.Certificate.String(),
		RankLB:         res.RankLB,
		FoolingLB:      res.FoolingLB,
		HeuristicDepth: res.HeuristicDepth,
		Blocks:         res.Blocks,
		TimedOut:       res.TimedOut,
		Canceled:       res.Canceled,
		CacheHit:       res.CacheHit,
		SATCalls:       res.SATCalls,
		Conflicts:      res.Conflicts,
		PackNS:         res.PackTime.Nanoseconds(),
		SATNS:          res.SATTime.Nanoseconds(),
		Fingerprint:    fingerprint,
		Partition:      make([]RectJSON, 0, res.Depth),
	}
	if res.Portfolio != nil {
		out.Portfolio = &PortfolioJSON{
			Wins:                res.Portfolio.Wins,
			BlockWinners:        res.Portfolio.BlockWinners,
			CancelledConflicts:  res.Portfolio.LoserConflicts,
			SharedClauseExports: res.Portfolio.SharedExported,
			SharedClauseImports: res.Portfolio.SharedImported,
		}
	}
	for _, r := range res.Partition.Rects {
		out.Partition = append(out.Partition, RectJSON{
			Rows: r.RowIndices(),
			Cols: r.ColIndices(),
		})
	}
	return out
}

// FillRequest is the body of POST /v1/fill — the cache-fill replication
// path: a gateway (or operator tooling) seeds a proved-optimal canonical
// result into a backend's cache so a failover lands warm. The receiver
// validates structure before accepting: the matrix must be its own
// canonical form, its fingerprint must match, and the partition must be a
// valid EBMF of it at the claimed depth. Optimality itself is taken on
// trust — /v1/fill is a fleet-internal endpoint, and every future hit is
// still re-validated by lifting.
type FillRequest struct {
	// Fingerprint is the canonical hash the result is keyed by.
	Fingerprint string `json:"fingerprint"`
	// Matrix is the canonical matrix in text form (bitmat.Parse format).
	Matrix string `json:"matrix"`
	// Result is the proved-optimal canonical-space result; its Partition
	// indexes Matrix.
	Result *ResultJSON `json:"result"`
}

// FillResponse answers POST /v1/fill.
type FillResponse struct {
	// Stored reports whether the fill added anything; false means every
	// tier already held the fingerprint (the common case when replication
	// races a hedged solve to the same shard).
	Stored bool `json:"stored"`
}

// ParseCertificate inverts core.Certificate.String; unknown names map to
// CertNone.
func ParseCertificate(s string) core.Certificate {
	switch s {
	case "rank":
		return core.CertRank
	case "fooling-set":
		return core.CertFooling
	case "unsat-proof":
		return core.CertUnsat
	default:
		return core.CertNone
	}
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Requests []SolveRequest `json:"requests"`
}

// BatchItem is one element of a batch response: either a result or an error.
type BatchItem struct {
	Result *ResultJSON `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// BatchResponse answers a batch in request order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
