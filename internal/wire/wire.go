// Package wire defines the JSON schema shared by the ebmfd service, the
// ebmfgw gateway and the ebmf CLI: request shapes (matrix + per-request
// options, job submissions) and result shapes (depth, provenance, partition,
// job status, streamed events). Keeping it in a single package means a
// client can drive the CLI, the daemon and the gateway interchangeably —
// `ebmf -json` prints exactly what `POST /v1/solve` returns.
//
// # Versioning and compatibility contract
//
// Every top-level request and response type carries an optional "api" field.
// The contract, which lets the job-oriented surface evolve without breaking
// deployed clients:
//
//   - A request may state the schema version it speaks ("api": 1). Absent or
//     zero means V1 — the pre-versioning schema is retroactively version 1.
//     Servers reject versions above their own with a structured error, code
//     "unsupported_api" (CheckAPI) — never by guessing at semantics.
//   - Responses echo the version they were produced under, so clients can
//     log and assert what they are decoding.
//   - Responses evolve additively within a version: new response fields may
//     appear at any time, and clients MUST tolerate unknown response fields
//     (Go's encoding/json default — this tolerance is what let the "api"
//     field itself ship without a flag day, and both tiers rely on it when
//     decoding each other's responses).
//   - Requests are decoded strictly at every tier (DisallowUnknownFields): a
//     typo'd option must be a 400, not a silently ignored knob. New request
//     fields therefore ship together with the server that understands them;
//     a client needing to know whether a field is understood checks the
//     server's advertised version first.
//   - Semantic changes — repurposed fields, changed defaults, removed
//     endpoints — require bumping V. There has been no such change yet.
//
// # Error envelope
//
// Every non-2xx response body is an ErrorResponse: a human-readable message
// plus a machine-readable code from the Code* constants, so clients and
// gateways branch on the code and never parse message text. 429 responses
// additionally carry a Retry-After header.
package wire

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bitmat"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/obs"
	"repro/internal/portfolio"
)

// V1 is the current wire schema version. See the package comment for the
// compatibility contract.
const V1 = 1

// CheckAPI validates a request's claimed schema version: 0 (unversioned)
// and every version up to V1 are accepted, anything newer is an error the
// caller maps to code CodeUnsupportedAPI.
func CheckAPI(api int) error {
	if api < 0 || api > V1 {
		return fmt.Errorf("wire: unsupported api version %d (this server speaks %d)", api, V1)
	}
	return nil
}

// SolveRequest is the body of POST /v1/solve (and one element of a batch).
// Exactly one of Matrix and Rows must be set.
type SolveRequest struct {
	// API is the wire schema version the client speaks (0 = V1).
	API int `json:"api,omitempty"`
	// Matrix is the pattern in text form: rows of '0'/'1' characters
	// separated by newlines (the bitmat.Parse format).
	Matrix string `json:"matrix,omitempty"`
	// Rows is the pattern as explicit 0/1 rows.
	Rows [][]int `json:"rows,omitempty"`
	// Options tunes this request; nil means server/CLI defaults.
	Options *SolveOptions `json:"options,omitempty"`
}

// SolveOptions is the per-request subset of core.Options exposed on the
// wire. Zero values mean "use the default".
type SolveOptions struct {
	// Trials overrides the row-packing trial count.
	Trials int `json:"trials,omitempty"`
	// Encoding selects the CNF compilation: "onehot" (default) or "log".
	Encoding string `json:"encoding,omitempty"`
	// AMO selects the at-most-one handling of the one-hot compilation:
	// "native" (default — the solver's built-in propagator), "pairwise" or
	// "sequential" (the encoded ablations).
	AMO string `json:"amo,omitempty"`
	// ConflictBudget bounds total SAT conflicts (<0 forces unlimited where
	// the deployment allows it; 0 keeps the default).
	ConflictBudget int64 `json:"conflict_budget,omitempty"`
	// TimeoutMS bounds solve wall-clock time in milliseconds.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Heuristic skips the exact SAT stage.
	Heuristic bool `json:"heuristic,omitempty"`
	// Portfolio races K diverse solver strategies per block (0 keeps the
	// single-strategy default; servers clamp K to their configured
	// maximum).
	Portfolio int `json:"portfolio,omitempty"`
	// PortfolioStrategies names the racing set explicitly ("canonical"
	// plus names from portfolio.Names()); empty means a default diverse
	// set seeded from each block's fingerprint. Setting it implies racing
	// even when Portfolio is 0.
	PortfolioStrategies []string `json:"portfolio_strategies,omitempty"`
	// ShareClauses exchanges short learnt clauses between racers.
	ShareClauses bool `json:"share_clauses,omitempty"`
}

// ErrNoMatrix is returned when a request carries neither form of the matrix.
var ErrNoMatrix = errors.New("wire: request has neither \"matrix\" nor \"rows\"")

// ParseMatrix materializes the request's pattern matrix.
func (r *SolveRequest) ParseMatrix() (*bitmat.Matrix, error) {
	switch {
	case r.Matrix != "" && r.Rows != nil:
		return nil, errors.New("wire: request sets both \"matrix\" and \"rows\"")
	case r.Matrix != "":
		return bitmat.Parse(r.Matrix)
	case r.Rows != nil:
		if len(r.Rows) == 0 || len(r.Rows[0]) == 0 {
			return nil, errors.New("wire: zero-dimension \"rows\"")
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Rows[0]) {
				return nil, errors.New("wire: ragged \"rows\"")
			}
			for _, v := range row {
				if v != 0 && v != 1 {
					return nil, fmt.Errorf("wire: non-binary entry %d in \"rows\"", v)
				}
			}
		}
		return bitmat.FromRows(r.Rows), nil
	default:
		return nil, ErrNoMatrix
	}
}

// Apply overlays the wire options onto a base configuration and returns the
// effective core options plus the requested timeout (0 = none requested).
func (o *SolveOptions) Apply(base core.Options) (core.Options, time.Duration, error) {
	if o == nil {
		return base, 0, nil
	}
	opts := base
	if o.Trials > 0 {
		opts.Packing.Trials = o.Trials
	}
	switch o.Encoding {
	case "": // keep the base configuration's encoding
	case "onehot":
		opts.Encoding = core.EncodingOneHot
	case "log":
		opts.Encoding = core.EncodingLog
	default:
		return opts, 0, fmt.Errorf("wire: unknown encoding %q", o.Encoding)
	}
	if o.AMO != "" {
		amo, err := encode.ParseAMO(o.AMO)
		if err != nil {
			return opts, 0, fmt.Errorf("wire: %w", err)
		}
		opts.AMO = amo
	}
	if o.ConflictBudget != 0 {
		opts.ConflictBudget = o.ConflictBudget
		if opts.ConflictBudget < 0 {
			opts.ConflictBudget = 0 // core convention: <=0 is unlimited
		}
	}
	opts.SkipSAT = opts.SkipSAT || o.Heuristic
	if o.Portfolio > 0 {
		opts.Portfolio.Size = o.Portfolio
	}
	if len(o.PortfolioStrategies) > 0 {
		// Validate names here so a typo is a 400, not a mid-solve error.
		if _, err := portfolio.Resolve(portfolio.Canonical(), o.PortfolioStrategies); err != nil {
			return opts, 0, err
		}
		opts.Portfolio.Strategies = o.PortfolioStrategies
	}
	if o.ShareClauses {
		opts.Portfolio.ShareClauses = true
	}
	var timeout time.Duration
	if o.TimeoutMS > 0 {
		timeout = time.Duration(o.TimeoutMS) * time.Millisecond
	}
	return opts, timeout, nil
}

// RectJSON is one combinatorial rectangle as explicit index lists.
type RectJSON struct {
	Rows []int `json:"rows"`
	Cols []int `json:"cols"`
}

// ResultJSON is the wire form of core.Result — the body of a /v1/solve
// response and of `ebmf -json` output.
type ResultJSON struct {
	// API echoes the wire schema version the result was produced under.
	API            int            `json:"api,omitempty"`
	Depth          int            `json:"depth"`
	Optimal        bool           `json:"optimal"`
	Certificate    string         `json:"certificate"`
	RankLB         int            `json:"rank_lb"`
	FoolingLB      int            `json:"fooling_lb"`
	HeuristicDepth int            `json:"heuristic_depth"`
	Blocks         int            `json:"blocks"`
	TimedOut       bool           `json:"timed_out,omitempty"`
	Canceled       bool           `json:"canceled,omitempty"`
	CacheHit       bool           `json:"cache_hit"`
	SATCalls       int            `json:"sat_calls"`
	Conflicts      int64          `json:"conflicts"`
	PackNS         int64          `json:"pack_ns"`
	SATNS          int64          `json:"sat_ns"`
	Fingerprint    string         `json:"fingerprint,omitempty"`
	Portfolio      *PortfolioJSON `json:"portfolio,omitempty"`
	// Trace carries the serving tier's finished span tree back to the
	// requester. Attached only when the request arrived with a traceparent
	// header (a gateway asking for the spans to stitch into its own trace);
	// gateways strip it before caching or answering clients.
	Trace     *obs.TraceJSON `json:"trace,omitempty"`
	Partition []RectJSON     `json:"partition"`
}

// PortfolioJSON is the wire form of core.PortfolioStats (present only when
// the solve raced).
type PortfolioJSON struct {
	// Wins counts race-round wins per strategy name.
	Wins map[string]int `json:"wins"`
	// BlockWinners is the deciding strategy per block, in block order.
	BlockWinners []string `json:"block_winners"`
	// CancelledConflicts is the work spent by cancelled racers.
	CancelledConflicts int64 `json:"cancelled_conflicts"`
	// SharedClauseExports and SharedClauseImports count exchange traffic.
	SharedClauseExports int64 `json:"shared_clause_exports"`
	SharedClauseImports int64 `json:"shared_clause_imports"`
}

// FromResult converts a solver result to its wire form. fingerprint may be
// empty (it is filled by layers that computed one).
func FromResult(res *core.Result, fingerprint string) *ResultJSON {
	out := &ResultJSON{
		API:            V1,
		Depth:          res.Depth,
		Optimal:        res.Optimal,
		Certificate:    res.Certificate.String(),
		RankLB:         res.RankLB,
		FoolingLB:      res.FoolingLB,
		HeuristicDepth: res.HeuristicDepth,
		Blocks:         res.Blocks,
		TimedOut:       res.TimedOut,
		Canceled:       res.Canceled,
		CacheHit:       res.CacheHit,
		SATCalls:       res.SATCalls,
		Conflicts:      res.Conflicts,
		PackNS:         res.PackTime.Nanoseconds(),
		SATNS:          res.SATTime.Nanoseconds(),
		Fingerprint:    fingerprint,
		Partition:      make([]RectJSON, 0, res.Depth),
	}
	if res.Portfolio != nil {
		out.Portfolio = &PortfolioJSON{
			Wins:                res.Portfolio.Wins,
			BlockWinners:        res.Portfolio.BlockWinners,
			CancelledConflicts:  res.Portfolio.LoserConflicts,
			SharedClauseExports: res.Portfolio.SharedExported,
			SharedClauseImports: res.Portfolio.SharedImported,
		}
	}
	for _, r := range res.Partition.Rects {
		out.Partition = append(out.Partition, RectJSON{
			Rows: r.RowIndices(),
			Cols: r.ColIndices(),
		})
	}
	return out
}

// FillRequest is the body of POST /v1/fill — the cache-fill replication
// path: a gateway (or operator tooling) seeds a proved-optimal canonical
// result into a backend's cache so a failover lands warm. The receiver
// validates structure before accepting: the matrix must be its own
// canonical form, its fingerprint must match, and the partition must be a
// valid EBMF of it at the claimed depth. Optimality itself is taken on
// trust — /v1/fill is a fleet-internal endpoint, and every future hit is
// still re-validated by lifting.
type FillRequest struct {
	// API is the wire schema version the sender speaks (0 = V1).
	API int `json:"api,omitempty"`
	// Fingerprint is the canonical hash the result is keyed by.
	Fingerprint string `json:"fingerprint"`
	// Matrix is the canonical matrix in text form (bitmat.Parse format).
	Matrix string `json:"matrix"`
	// Result is the proved-optimal canonical-space result; its Partition
	// indexes Matrix.
	Result *ResultJSON `json:"result"`
}

// FillResponse answers POST /v1/fill.
type FillResponse struct {
	// API echoes the wire schema version.
	API int `json:"api,omitempty"`
	// Stored reports whether the fill added anything; false means every
	// tier already held the fingerprint (the common case when replication
	// races a hedged solve to the same shard).
	Stored bool `json:"stored"`
}

// ParseCertificate inverts core.Certificate.String; unknown names map to
// CertNone.
func ParseCertificate(s string) core.Certificate {
	switch s {
	case "rank":
		return core.CertRank
	case "fooling-set":
		return core.CertFooling
	case "unsat-proof":
		return core.CertUnsat
	default:
		return core.CertNone
	}
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// API is the wire schema version the client speaks (0 = V1).
	API      int            `json:"api,omitempty"`
	Requests []SolveRequest `json:"requests"`
}

// BatchItem is one element of a batch response: either a result or an error.
type BatchItem struct {
	Result *ResultJSON `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// BatchResponse answers a batch in request order.
type BatchResponse struct {
	// API echoes the wire schema version.
	API     int         `json:"api,omitempty"`
	Results []BatchItem `json:"results"`
}

// Machine-readable error codes carried by ErrorResponse. Clients and
// gateways branch on these; the human-readable message is for logs only.
const (
	// CodeBadRequest: malformed JSON, unknown fields, or invalid options.
	CodeBadRequest = "bad_request"
	// CodeBadMatrix: the request's matrix is missing, ragged, non-binary or
	// otherwise unparseable.
	CodeBadMatrix = "bad_matrix"
	// CodeUnsupportedAPI: the request's "api" field names a schema version
	// newer than this server speaks (CheckAPI).
	CodeUnsupportedAPI = "unsupported_api"
	// CodeBudgetExceeded: the request exceeds a configured server budget —
	// matrix cells, batch length, or body bytes.
	CodeBudgetExceeded = "budget_exceeded"
	// CodeQueueFull: admission control rejected the request because the
	// global queue is saturated. Carries Retry-After.
	CodeQueueFull = "queue_full"
	// CodeQuotaExceeded: the requesting tenant is at its queued-work quota
	// while the server still has room for other tenants. Carries Retry-After.
	CodeQuotaExceeded = "quota_exceeded"
	// CodeUnauthorized: the request presented an API key no tenant owns.
	CodeUnauthorized = "unauthorized"
	// CodeDraining: the server is shutting down and rejects new work.
	CodeDraining = "draining"
	// CodeNotFound: the named resource (a job ID) does not exist or is not
	// visible to the requesting tenant.
	CodeNotFound = "not_found"
	// CodeClientGone: the client disconnected while the request was queued
	// (nginx-style 499; seen only in logs and metrics, never by the client).
	CodeClientGone = "client_gone"
	// CodeUpstream: a gateway could not obtain an answer from any backend.
	CodeUpstream = "backend_unavailable"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// API echoes the wire schema version.
	API int `json:"api,omitempty"`
	// Error is the human-readable message.
	Error string `json:"error"`
	// Code is the machine-readable classification (Code* constants). Empty
	// only in responses from pre-versioning servers.
	Code string `json:"code,omitempty"`
}

// Errorf builds a coded error envelope.
func Errorf(code, format string, args ...any) ErrorResponse {
	return ErrorResponse{API: V1, Code: code, Error: fmt.Sprintf(format, args...)}
}
