package wire

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// roundTrip marshals v, unmarshals into a fresh value of the same type, and
// returns it for comparison.
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v).Elem()).Interface()
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal %T: %v\n%s", v, err, data)
	}
	return out
}

// TestRoundTripEveryWireType pins the wire schema: every request/response
// type must survive marshal→unmarshal unchanged. The gateway re-encodes
// requests and decodes responses on the client side of this schema, so any
// lossy field here silently corrupts cross-tier traffic.
func TestRoundTripEveryWireType(t *testing.T) {
	fullResult := &ResultJSON{
		Depth:          5,
		Optimal:        true,
		Certificate:    "depth 5 proved by UNSAT at 4",
		RankLB:         4,
		FoolingLB:      5,
		HeuristicDepth: 6,
		Blocks:         2,
		TimedOut:       true,
		Canceled:       true,
		CacheHit:       true,
		SATCalls:       7,
		Conflicts:      1234,
		PackNS:         5000,
		SATNS:          60000,
		Fingerprint:    "abc123",
		Portfolio: &PortfolioJSON{
			Wins:                map[string]int{"canonical": 2, "luby": 1},
			BlockWinners:        []string{"canonical", "luby"},
			CancelledConflicts:  99,
			SharedClauseExports: 3,
			SharedClauseImports: 4,
		},
		Partition: []RectJSON{
			{Rows: []int{0, 2}, Cols: []int{1}},
			{Rows: []int{1}, Cols: []int{0, 3}},
		},
	}
	cases := []struct {
		name string
		v    any
	}{
		{"SolveRequest/matrix", &SolveRequest{Matrix: "101\n011"}},
		{"SolveRequest/rows", &SolveRequest{Rows: [][]int{{1, 0}, {0, 1}}}},
		{"SolveRequest/options", &SolveRequest{
			Matrix: "1",
			Options: &SolveOptions{
				Trials:              40,
				Encoding:            "log",
				ConflictBudget:      -1,
				TimeoutMS:           250,
				Heuristic:           true,
				Portfolio:           3,
				PortfolioStrategies: []string{"canonical", "luby"},
				ShareClauses:        true,
			},
		}},
		{"SolveOptions/zero", &SolveOptions{}},
		{"RectJSON", &RectJSON{Rows: []int{0, 1}, Cols: []int{2}}},
		{"RectJSON/empty", &RectJSON{Rows: []int{}, Cols: []int{}}},
		{"ResultJSON/full", fullResult},
		{"ResultJSON/minimal", &ResultJSON{Depth: 0, Partition: []RectJSON{}}},
		{"PortfolioJSON", fullResult.Portfolio},
		{"BatchRequest", &BatchRequest{Requests: []SolveRequest{
			{Matrix: "1"}, {Rows: [][]int{{1}}},
		}}},
		{"BatchItem/result", &BatchItem{Result: fullResult}},
		{"BatchItem/error", &BatchItem{Error: "matrix exceeds size limit"}},
		{"BatchResponse", &BatchResponse{Results: []BatchItem{
			{Result: &ResultJSON{Depth: 1, Partition: []RectJSON{{Rows: []int{0}, Cols: []int{0}}}}},
			{Error: "bad request"},
		}}},
		{"ErrorResponse", &ErrorResponse{Error: "solve queue full, retry later"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := roundTrip(t, tc.v)
			if !reflect.DeepEqual(got, tc.v) {
				t.Fatalf("round trip changed the value:\n got %+v\nwant %+v", got, tc.v)
			}
		})
	}
}

// TestUnknownFieldTolerance pins the compatibility direction: clients (and
// the gateway, which is a client of its backends) decode responses with
// plain json.Unmarshal, so a newer server adding fields must never break an
// older client.
func TestUnknownFieldTolerance(t *testing.T) {
	cases := []struct {
		name string
		data string
		dst  any
	}{
		{"ResultJSON", `{"depth":2,"optimal":true,"partition":[],"future_field":{"a":[1,2]}}`, &ResultJSON{}},
		{"PortfolioJSON", `{"wins":{"luby":1},"novel_counter":7}`, &PortfolioJSON{}},
		{"BatchResponse", `{"results":[{"result":null,"error":"x","retry_hint_ms":50}],"page":1}`, &BatchResponse{}},
		{"ErrorResponse", `{"error":"nope","code":"QUEUE_FULL"}`, &ErrorResponse{}},
		{"SolveRequest", `{"matrix":"1","priority":"high"}`, &SolveRequest{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := json.Unmarshal([]byte(tc.data), tc.dst); err != nil {
				t.Fatalf("unknown fields broke decoding: %v", err)
			}
		})
	}
	var res ResultJSON
	if err := json.Unmarshal([]byte(`{"depth":2,"optimal":true,"partition":[],"x":1}`), &res); err != nil || res.Depth != 2 || !res.Optimal {
		t.Fatalf("known fields lost next to unknown ones: %+v (%v)", res, err)
	}
}

// TestErrorPayloadDecoding pins the error path a gateway relies on: every
// non-2xx body is an ErrorResponse whose message survives the trip.
func TestErrorPayloadDecoding(t *testing.T) {
	for _, msg := range []string{
		"solve queue full, retry later",
		"server draining",
		`wire: unknown encoding "cnf3"`,
		"matrix exceeds size limit",
	} {
		data, err := json.Marshal(ErrorResponse{Error: msg})
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error != msg {
			t.Fatalf("error payload %q did not survive: %+v (%v)", msg, e, err)
		}
	}
	// A batch item error decodes from the same shape.
	var item BatchItem
	if err := json.Unmarshal([]byte(`{"error":"ragged rows"}`), &item); err != nil ||
		item.Error != "ragged rows" || item.Result != nil {
		t.Fatalf("batch error item: %+v (%v)", item, err)
	}
}

func TestParseMatrixForms(t *testing.T) {
	cases := []struct {
		name    string
		req     SolveRequest
		wantErr bool
		rows    int
		cols    int
	}{
		{"matrix form", SolveRequest{Matrix: "101\n011"}, false, 2, 3},
		{"rows form", SolveRequest{Rows: [][]int{{1, 0}, {0, 1}}}, false, 2, 2},
		{"neither", SolveRequest{}, true, 0, 0},
		{"both", SolveRequest{Matrix: "1", Rows: [][]int{{1}}}, true, 0, 0},
		{"ragged rows", SolveRequest{Rows: [][]int{{1, 0}, {1}}}, true, 0, 0},
		{"non-binary", SolveRequest{Rows: [][]int{{1, 2}}}, true, 0, 0},
		{"zero rows", SolveRequest{Rows: [][]int{}}, true, 0, 0},
		{"zero cols", SolveRequest{Rows: [][]int{{}, {}}}, true, 0, 0},
		{"bad chars", SolveRequest{Matrix: "10\n2x"}, true, 0, 0},
		{"empty matrix string ragged", SolveRequest{Matrix: "10\n1"}, true, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := tc.req.ParseMatrix()
			if tc.wantErr {
				if err == nil {
					t.Fatalf("no error for %+v (got %dx%d)", tc.req, m.Rows(), m.Cols())
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if m.Rows() != tc.rows || m.Cols() != tc.cols {
				t.Fatalf("parsed %dx%d, want %dx%d", m.Rows(), m.Cols(), tc.rows, tc.cols)
			}
		})
	}
}

func TestApplyValidatesAndOverlays(t *testing.T) {
	base := core.DefaultOptions()
	opts, timeout, err := (&SolveOptions{
		Trials:    7,
		Encoding:  "log",
		TimeoutMS: 1500,
		Portfolio: 3,
	}).Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Packing.Trials != 7 || opts.Encoding != core.EncodingLog ||
		opts.Portfolio.Size != 3 || timeout.Milliseconds() != 1500 {
		t.Fatalf("overlay lost fields: %+v timeout=%v", opts, timeout)
	}
	if _, _, err := (&SolveOptions{Encoding: "cnf3"}).Apply(base); err == nil {
		t.Fatalf("unknown encoding accepted")
	}
	if _, _, err := (&SolveOptions{PortfolioStrategies: []string{"bogus"}}).Apply(base); err == nil {
		t.Fatalf("unknown portfolio strategy accepted")
	}
	// nil options: base unchanged.
	opts, timeout, err = (*SolveOptions)(nil).Apply(base)
	if err != nil || timeout != 0 || !reflect.DeepEqual(opts, base) {
		t.Fatalf("nil options changed the base: %+v (%v, %v)", opts, timeout, err)
	}
}

// TestRequestSchemaRejectsUnknownFieldsWhenStrict documents the server-side
// decoding posture: servers decode requests with DisallowUnknownFields, so
// a typo'd option name is a 400, while response decoding stays tolerant
// (TestUnknownFieldTolerance).
func TestRequestSchemaRejectsUnknownFieldsWhenStrict(t *testing.T) {
	dec := json.NewDecoder(strings.NewReader(`{"matrecks":"1"}`))
	dec.DisallowUnknownFields()
	var req SolveRequest
	if err := dec.Decode(&req); err == nil {
		t.Fatalf("strict decoding accepted an unknown field")
	}
}
