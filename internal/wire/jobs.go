package wire

import "repro/internal/obs"

// Job lifecycle states. A job moves strictly forward:
//
//	queued → running → done | canceled | failed
//	queued → canceled                 (canceled before a slot was granted)
//	queued → done                     (degraded: shed to the heuristic path)
//
// Terminal states (done, canceled, failed) never change; a done job keeps
// its Result until it expires from the registry.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobCanceled = "canceled"
	JobFailed   = "failed"
)

// JobTerminal reports whether state is one a job never leaves.
func JobTerminal(state string) bool {
	return state == JobDone || state == JobCanceled || state == JobFailed
}

// JobRequest is the body of POST /v1/jobs. The solve payload mirrors
// SolveRequest (exactly one of Matrix and Rows); the extra fields control
// job lifecycle rather than the solve itself.
type JobRequest struct {
	// API is the wire schema version the client speaks (0 = V1).
	API int `json:"api,omitempty"`
	// Matrix is the pattern in text form (bitmat.Parse format).
	Matrix string `json:"matrix,omitempty"`
	// Rows is the pattern as explicit 0/1 rows.
	Rows [][]int `json:"rows,omitempty"`
	// Options tunes the solve; nil means server defaults.
	Options *SolveOptions `json:"options,omitempty"`
	// CancelOnDisconnect cancels the job when its last /events watcher
	// disconnects before completion. Off by default: an async job normally
	// survives the submitting client so it can be polled later.
	CancelOnDisconnect bool `json:"cancel_on_disconnect,omitempty"`
	// Degrade opts the job into graceful shedding: when admission would
	// reject it (queue or tenant quota full), the server answers with a
	// heuristic-only result (optimal=false, exit-code-2 semantics) instead
	// of a 429.
	Degrade bool `json:"degrade,omitempty"`
	// CallbackURL, when set, names a webhook that receives the terminal
	// JobJSON as a POST with at-least-once delivery (retried with backoff,
	// resumed across server restarts). The URL is validated at submit
	// against the server's configured allowlist; servers with no allowlist
	// reject it.
	CallbackURL string `json:"callback_url,omitempty"`
}

// SolveRequest returns the solve-payload view of the job request, for code
// paths (validation, fingerprinting, the solve pipeline) that speak
// SolveRequest.
func (r *JobRequest) SolveRequest() *SolveRequest {
	return &SolveRequest{API: r.API, Matrix: r.Matrix, Rows: r.Rows, Options: r.Options}
}

// JobJSON is the wire form of a job: the body of POST /v1/jobs and
// GET /v1/jobs/{id} responses, and the payload of a terminal SSE event.
type JobJSON struct {
	// API echoes the wire schema version.
	API int `json:"api,omitempty"`
	// ID names the job in later GET/DELETE/events calls.
	ID string `json:"id"`
	// State is one of the Job* constants.
	State string `json:"state"`
	// Tenant is the tenant the job was accounted to.
	Tenant string `json:"tenant,omitempty"`
	// Degraded marks a job answered by the shed-to-heuristic path: Result is
	// heuristic-only (optimal=false) because the queue was saturated.
	Degraded bool `json:"degraded,omitempty"`
	// QueuedMS and RunMS are time spent waiting for a slot and solving.
	QueuedMS int64 `json:"queued_ms,omitempty"`
	RunMS    int64 `json:"run_ms,omitempty"`
	// Result is set once State is "done" (for canceled jobs that had partial
	// progress it may carry the canceled partial result).
	Result *ResultJSON `json:"result,omitempty"`
	// Error is set when State is "failed".
	Error string `json:"error,omitempty"`
	// Recovered marks a job re-admitted from the durable journal after a
	// server restart: same ID, solve re-run (or served from the result
	// store) under a fresh admission.
	Recovered bool `json:"recovered,omitempty"`
	// Rehomed marks a gateway job resubmitted to another backend after its
	// home died; the snapshot reflects the new backend's job. Sound because
	// a result is a deterministic property of the matrix.
	Rehomed bool `json:"rehomed,omitempty"`
}

// SSE event names on GET /v1/jobs/{id}/events. Every event's data line is a
// JSON-encoded JobEvent; the stream ends after the first terminal event.
const (
	// EventStatus reports a lifecycle transition (queued, running, ...).
	EventStatus = "status"
	// EventProgress reports an anytime solver sample: current best depth,
	// proven lower bound, conflicts, per-block position.
	EventProgress = "progress"
	// EventDone is terminal: the full JobJSON with result or error. Also
	// emitted for canceled and failed jobs (State distinguishes them).
	EventDone = "done"
)

// JobEvent is the data payload of one SSE event. Exactly one of the
// pointer fields is set, matching the event name.
type JobEvent struct {
	// API echoes the wire schema version.
	API int `json:"api,omitempty"`
	// Seq is the event's position in the job's stream, strictly increasing
	// from 1; it doubles as the SSE id: line so clients can resume.
	Seq int64 `json:"seq"`
	// State is the job state at the time of the event.
	State string `json:"state"`
	// Progress carries a solver sample (event: progress).
	Progress *obs.ProgressJSON `json:"progress,omitempty"`
	// Job carries the terminal snapshot (event: done).
	Job *JobJSON `json:"job,omitempty"`
}
