package wire

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestJobRoundTrip pins the job wire schema the same way
// TestRoundTripEveryWireType pins the sync schema: the gateway re-encodes job
// submissions and decodes job snapshots/events, so lossy fields corrupt
// cross-tier traffic.
func TestJobRoundTrip(t *testing.T) {
	done := &JobJSON{
		API:      V1,
		ID:       "j-0000002a",
		State:    JobDone,
		Tenant:   "acme",
		Degraded: true,
		QueuedMS: 12,
		RunMS:    340,
		Result:   &ResultJSON{API: V1, Depth: 3, Partition: []RectJSON{{Rows: []int{0}, Cols: []int{1}}}},
	}
	cases := []struct {
		name string
		v    any
	}{
		{"JobRequest/minimal", &JobRequest{Matrix: "101\n011"}},
		{"JobRequest/full", &JobRequest{
			API:                V1,
			Rows:               [][]int{{1, 0}, {0, 1}},
			Options:            &SolveOptions{Portfolio: 3, ShareClauses: true},
			CancelOnDisconnect: true,
			Degrade:            true,
		}},
		{"JobJSON/queued", &JobJSON{ID: "j-1", State: JobQueued, Tenant: "default"}},
		{"JobJSON/failed", &JobJSON{ID: "j-2", State: JobFailed, Error: "matrix exceeds size limit"}},
		{"JobJSON/done", done},
		{"JobEvent/status", &JobEvent{API: V1, Seq: 1, State: JobQueued}},
		{"JobEvent/progress", &JobEvent{API: V1, Seq: 2, State: JobRunning,
			Progress: &obs.ProgressJSON{TUS: 1700000000000000, Block: 1, Bound: 4, LB: 3, Conflicts: 2048, Learnts: 77}}},
		{"JobEvent/done", &JobEvent{API: V1, Seq: 3, State: JobDone, Job: done}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := roundTrip(t, tc.v)
			if !reflect.DeepEqual(got, tc.v) {
				t.Fatalf("round trip changed the value:\n got %+v\nwant %+v", got, tc.v)
			}
		})
	}
}

// TestJobRequestSolveView pins that the solve-payload view loses nothing the
// solve pipeline consumes.
func TestJobRequestSolveView(t *testing.T) {
	jr := &JobRequest{
		API:     V1,
		Matrix:  "10\n01",
		Options: &SolveOptions{Trials: 9},
		Degrade: true,
	}
	sr := jr.SolveRequest()
	if sr.API != V1 || sr.Matrix != jr.Matrix || sr.Options != jr.Options {
		t.Fatalf("solve view lost fields: %+v", sr)
	}
	m, err := sr.ParseMatrix()
	if err != nil || m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("solve view unparseable: %v", err)
	}
}

func TestJobTerminal(t *testing.T) {
	for state, terminal := range map[string]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobCanceled: true, JobFailed: true,
		"": false, "bogus": false,
	} {
		if JobTerminal(state) != terminal {
			t.Fatalf("JobTerminal(%q) = %v, want %v", state, !terminal, terminal)
		}
	}
}

func TestCheckAPI(t *testing.T) {
	for _, v := range []int{0, V1} {
		if err := CheckAPI(v); err != nil {
			t.Fatalf("CheckAPI(%d): %v", v, err)
		}
	}
	for _, v := range []int{V1 + 1, -1, 99} {
		if err := CheckAPI(v); err == nil {
			t.Fatalf("CheckAPI(%d) accepted", v)
		}
	}
}

// TestErrorfEnvelope pins the coded error constructor: version stamped, code
// machine-readable, message formatted — and the whole envelope survives the
// wire.
func TestErrorfEnvelope(t *testing.T) {
	e := Errorf(CodeQuotaExceeded, "tenant %q at quota %d", "acme", 8)
	if e.API != V1 || e.Code != CodeQuotaExceeded || e.Error != `tenant "acme" at quota 8` {
		t.Fatalf("bad envelope: %+v", e)
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back ErrorResponse
	if err := json.Unmarshal(data, &back); err != nil || back != e {
		t.Fatalf("envelope did not survive: %+v (%v)", back, err)
	}
	// Pre-versioning body (bare string) still decodes; Code stays empty so
	// callers can detect the old tier.
	var old ErrorResponse
	if err := json.Unmarshal([]byte(`{"error":"queue full"}`), &old); err != nil ||
		old.Code != "" || old.Error != "queue full" {
		t.Fatalf("legacy envelope broke: %+v (%v)", old, err)
	}
}
