package aod

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/rowpack"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	p := rowpack.Pack(m, rowpack.Options{Trials: 20, Seed: 1})
	sched := Compile(p)
	var buf bytes.Buffer
	if err := sched.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Target.Equal(m) {
		t.Fatal("target changed")
	}
	if back.Depth() != sched.Depth() {
		t.Fatalf("depth %d → %d", sched.Depth(), back.Depth())
	}
	if err := back.Verify(NewArray(6, 6)); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
	for i := range sched.Shots {
		if !back.Shots[i].RowTones.Equal(sched.Shots[i].RowTones) ||
			!back.Shots[i].ColTones.Equal(sched.Shots[i].ColTones) {
			t.Fatalf("shot %d changed", i)
		}
	}
}

func TestReadJSONRejectsMalformed(t *testing.T) {
	cases := []string{
		`not json`,
		`{"rows":2,"cols":2,"target":["10"],"shots":[]}`,                                  // row count mismatch
		`{"rows":1,"cols":2,"target":["1"],"shots":[]}`,                                   // column count mismatch
		`{"rows":1,"cols":1,"target":["x"],"shots":[]}`,                                   // bad character
		`{"rows":1,"cols":1,"target":["1"],"shots":[{"row_tones":[5],"col_tones":[0]}]}`,  // tone range
		`{"rows":1,"cols":1,"target":["1"],"shots":[{"row_tones":[0],"col_tones":[-1]}]}`, // negative tone
		`{"rows":-1,"cols":1,"target":[],"shots":[]}`,                                     // negative dims
	}
	for _, src := range cases {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("accepted malformed input %q", src)
		}
	}
}

func TestWriteJSONShape(t *testing.T) {
	m := bitmat.MustParse("11\n00")
	p := rowpack.Pack(m, rowpack.Options{Trials: 1})
	var buf bytes.Buffer
	if err := Compile(p).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"rows": 2`, `"row_tones"`, `"target"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
