// Package aod models the physical addressing layer of Figure 1 of the
// paper: a 2D atom array driven by a crossed acousto-optic deflector (AOD).
// Each addressing shot switches on a set of row tones and a set of column
// tones; atoms at the tone intersections receive one Rz pulse. A rectangle
// partition of the target pattern therefore compiles directly into a pulse
// schedule whose depth is the partition size.
//
// The simulator replays a schedule against an array, counting pulses per
// site, and the verifier checks the hardware contract the mathematics is
// supposed to guarantee: every targeted qubit is hit exactly once and no
// spectator is hit at all. Sites without atoms (vacancies) are "don't care".
package aod

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/bitmat"
	"repro/internal/rect"
)

// Array is a 2D atom array. Sites may be empty (vacancies): pulses hitting a
// vacancy have no effect, matching the paper's don't-care discussion.
type Array struct {
	rows, cols int
	atoms      *bitmat.Matrix // 1 = atom present
}

// NewArray returns a fully loaded rows×cols array.
func NewArray(rows, cols int) *Array {
	return &Array{rows: rows, cols: cols, atoms: bitmat.AllOnes(rows, cols)}
}

// NewArrayWithVacancies returns an array whose occupied sites are given by
// atoms (1 = atom present).
func NewArrayWithVacancies(atoms *bitmat.Matrix) *Array {
	return &Array{rows: atoms.Rows(), cols: atoms.Cols(), atoms: atoms.Clone()}
}

// Rows returns the number of array rows.
func (a *Array) Rows() int { return a.rows }

// Cols returns the number of array columns.
func (a *Array) Cols() int { return a.cols }

// HasAtom reports whether site (i, j) holds an atom.
func (a *Array) HasAtom(i, j int) bool { return a.atoms.Get(i, j) }

// Shot is one AOD configuration: the active row and column tones.
type Shot struct {
	// RowTones has bit i set if row tone i is on.
	RowTones bitmat.Vec
	// ColTones has bit j set if column tone j is on.
	ColTones bitmat.Vec
}

// Sites returns the number of illuminated sites (|rows|·|cols|).
func (s Shot) Sites() int { return s.RowTones.Ones() * s.ColTones.Ones() }

// Tones returns the number of active tones (|rows|+|cols|), the control
// cost of the shot.
func (s Shot) Tones() int { return s.RowTones.Ones() + s.ColTones.Ones() }

// String renders the shot as row and column tone lists.
func (s Shot) String() string {
	return fmt.Sprintf("rows%v cols%v", s.RowTones.OnesPositions(), s.ColTones.OnesPositions())
}

// Schedule is an ordered sequence of shots addressing a target pattern.
type Schedule struct {
	// Target is the pattern of qubits that must receive exactly one pulse.
	Target *bitmat.Matrix
	// Shots are the AOD configurations, applied in order.
	Shots []Shot
}

// Depth returns the number of shots.
func (s *Schedule) Depth() int { return len(s.Shots) }

// Compile converts a rectangle partition into an AOD schedule, one shot per
// rectangle.
func Compile(p *rect.Partition) *Schedule {
	sched := &Schedule{Target: p.M}
	for _, r := range p.Rects {
		sched.Shots = append(sched.Shots, Shot{
			RowTones: r.Rows.Clone(),
			ColTones: r.Cols.Clone(),
		})
	}
	return sched
}

// PulseCounts replays the schedule on the array and returns the number of
// pulses received per occupied site (vacant sites stay 0).
func (s *Schedule) PulseCounts(a *Array) [][]int {
	counts := make([][]int, a.rows)
	for i := range counts {
		counts[i] = make([]int, a.cols)
	}
	for _, shot := range s.Shots {
		shot.RowTones.ForEachOne(func(i int) {
			shot.ColTones.ForEachOne(func(j int) {
				if a.HasAtom(i, j) {
					counts[i][j]++
				}
			})
		})
	}
	return counts
}

// Verification failure modes.
var (
	// ErrMissedTarget marks a target qubit that received no pulse.
	ErrMissedTarget = errors.New("aod: target qubit missed")
	// ErrDoubleHit marks a target qubit pulsed more than once.
	ErrDoubleHit = errors.New("aod: target qubit pulsed multiple times")
	// ErrSpectatorHit marks a non-target atom that received a pulse.
	ErrSpectatorHit = errors.New("aod: spectator atom pulsed")
	// ErrShape marks a dimension mismatch between schedule and array.
	ErrShape = errors.New("aod: schedule/array shape mismatch")
	// ErrTargetVacant marks a target site without an atom.
	ErrTargetVacant = errors.New("aod: target site is vacant")
)

// Verify simulates the schedule and checks the addressing contract: every
// occupied target site is pulsed exactly once and every occupied non-target
// site not at all. Vacant sites are ignored regardless of pulse count.
func (s *Schedule) Verify(a *Array) error {
	if s.Target.Rows() != a.rows || s.Target.Cols() != a.cols {
		return fmt.Errorf("target %d×%d vs array %d×%d: %w",
			s.Target.Rows(), s.Target.Cols(), a.rows, a.cols, ErrShape)
	}
	counts := s.PulseCounts(a)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			target := s.Target.Get(i, j)
			if target && !a.HasAtom(i, j) {
				return fmt.Errorf("site (%d,%d): %w", i, j, ErrTargetVacant)
			}
			if !a.HasAtom(i, j) {
				continue
			}
			switch {
			case target && counts[i][j] == 0:
				return fmt.Errorf("site (%d,%d): %w", i, j, ErrMissedTarget)
			case target && counts[i][j] > 1:
				return fmt.Errorf("site (%d,%d) hit %d times: %w", i, j, counts[i][j], ErrDoubleHit)
			case !target && counts[i][j] > 0:
				return fmt.Errorf("site (%d,%d): %w", i, j, ErrSpectatorHit)
			}
		}
	}
	return nil
}

// Stats summarizes the control cost of a schedule.
type Stats struct {
	// Depth is the number of shots (the quantity the paper minimizes).
	Depth int
	// TotalTones is Σ per-shot (row+column) tone counts.
	TotalTones int
	// MaxTones is the largest per-shot tone count.
	MaxTones int
	// ReconfigCost is Σ Hamming distance between consecutive AOD
	// configurations (a proxy for retuning latency between shots).
	ReconfigCost int
}

// ComputeStats returns the control-cost summary of the schedule.
func (s *Schedule) ComputeStats() Stats {
	st := Stats{Depth: len(s.Shots)}
	for i, shot := range s.Shots {
		tones := shot.Tones()
		st.TotalTones += tones
		if tones > st.MaxTones {
			st.MaxTones = tones
		}
		if i > 0 {
			st.ReconfigCost += hamming(s.Shots[i-1], shot)
		}
	}
	return st
}

// hamming is the Hamming distance between two AOD configurations.
func hamming(a, b Shot) int {
	d := 0
	r := a.RowTones.Clone()
	r.Xor(b.RowTones)
	d += r.Ones()
	c := a.ColTones.Clone()
	c.Xor(b.ColTones)
	d += c.Ones()
	return d
}

// MinimizeReconfig reorders the shots greedily so consecutive AOD
// configurations are as similar as possible (nearest-neighbour on Hamming
// distance). Depth and correctness are unchanged — only the order.
func (s *Schedule) MinimizeReconfig() {
	n := len(s.Shots)
	if n < 3 {
		return
	}
	used := make([]bool, n)
	order := make([]int, 0, n)
	order = append(order, 0)
	used[0] = true
	for len(order) < n {
		last := s.Shots[order[len(order)-1]]
		best, bestD := -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			d := hamming(last, s.Shots[i])
			if best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		order = append(order, best)
		used[best] = true
	}
	shots := make([]Shot, n)
	for idx, i := range order {
		shots[idx] = s.Shots[i]
	}
	s.Shots = shots
}

// Render draws the schedule as ASCII art, one frame per shot: '#' targeted
// this shot, '·' atom not addressed, ' ' vacancy.
func (s *Schedule) Render(a *Array) string {
	var sb strings.Builder
	for k, shot := range s.Shots {
		fmt.Fprintf(&sb, "shot %d: %s\n", k, shot)
		for i := 0; i < a.rows; i++ {
			for j := 0; j < a.cols; j++ {
				switch {
				case !a.HasAtom(i, j):
					sb.WriteByte(' ')
				case shot.RowTones.Get(i) && shot.ColTones.Get(j):
					sb.WriteByte('#')
				default:
					sb.WriteString("·")
				}
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
