package aod

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/bitmat"
)

// scheduleJSON is the wire form of a Schedule: explicit index lists rather
// than bitsets, so downstream control software can consume it without
// knowing this package's internals.
type scheduleJSON struct {
	Rows   int        `json:"rows"`
	Cols   int        `json:"cols"`
	Target []string   `json:"target"` // '0'/'1' strings, one per row
	Shots  []shotJSON `json:"shots"`
}

type shotJSON struct {
	RowTones []int `json:"row_tones"`
	ColTones []int `json:"col_tones"`
}

// WriteJSON serializes the schedule for hardware handoff.
func (s *Schedule) WriteJSON(w io.Writer) error {
	out := scheduleJSON{
		Rows: s.Target.Rows(),
		Cols: s.Target.Cols(),
	}
	for i := 0; i < s.Target.Rows(); i++ {
		out.Target = append(out.Target, s.Target.Row(i).String())
	}
	for _, shot := range s.Shots {
		out.Shots = append(out.Shots, shotJSON{
			RowTones: shot.RowTones.OnesPositions(),
			ColTones: shot.ColTones.OnesPositions(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a schedule written by WriteJSON.
func ReadJSON(r io.Reader) (*Schedule, error) {
	var in scheduleJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("aod: %w", err)
	}
	if in.Rows < 0 || in.Cols < 0 {
		return nil, fmt.Errorf("aod: negative dimensions %d×%d", in.Rows, in.Cols)
	}
	if len(in.Target) != in.Rows {
		return nil, fmt.Errorf("aod: %d target rows for %d-row schedule", len(in.Target), in.Rows)
	}
	target := bitmat.New(in.Rows, in.Cols)
	for i, rowStr := range in.Target {
		if len(rowStr) != in.Cols {
			return nil, fmt.Errorf("aod: target row %d has %d columns, want %d", i, len(rowStr), in.Cols)
		}
		for j, c := range rowStr {
			switch c {
			case '1':
				target.Set(i, j, true)
			case '0':
			default:
				return nil, fmt.Errorf("aod: target row %d has invalid character %q", i, c)
			}
		}
	}
	sched := &Schedule{Target: target}
	for si, sj := range in.Shots {
		shot := Shot{RowTones: bitmat.NewVec(in.Rows), ColTones: bitmat.NewVec(in.Cols)}
		for _, t := range sj.RowTones {
			if t < 0 || t >= in.Rows {
				return nil, fmt.Errorf("aod: shot %d row tone %d out of range", si, t)
			}
			shot.RowTones.Set(t, true)
		}
		for _, t := range sj.ColTones {
			if t < 0 || t >= in.Cols {
				return nil, fmt.Errorf("aod: shot %d col tone %d out of range", si, t)
			}
			shot.ColTones.Set(t, true)
		}
		sched.Shots = append(sched.Shots, shot)
	}
	return sched, nil
}
