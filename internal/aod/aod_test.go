package aod

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitmat"
	"repro/internal/rect"
	"repro/internal/rowpack"
)

func fig1bPartition(t *testing.T) *rect.Partition {
	t.Helper()
	m := bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
	p := rowpack.Pack(m, rowpack.Options{Trials: 50, Seed: 3})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileAndVerifyFig1b(t *testing.T) {
	p := fig1bPartition(t)
	sched := Compile(p)
	if sched.Depth() != p.Depth() {
		t.Fatalf("depth %d != partition %d", sched.Depth(), p.Depth())
	}
	arr := NewArray(6, 6)
	if err := sched.Verify(arr); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestVerifyDetectsSpectatorHit(t *testing.T) {
	target := bitmat.MustParse("10\n00")
	sched := &Schedule{Target: target}
	shot := Shot{RowTones: bitmat.VecFromBits([]int{1, 0}), ColTones: bitmat.VecFromBits([]int{1, 1})}
	sched.Shots = append(sched.Shots, shot) // hits (0,1) which is not a target
	err := sched.Verify(NewArray(2, 2))
	if !errors.Is(err, ErrSpectatorHit) {
		t.Fatalf("got %v, want ErrSpectatorHit", err)
	}
}

func TestVerifyDetectsMiss(t *testing.T) {
	target := bitmat.MustParse("11\n00")
	sched := &Schedule{Target: target}
	sched.Shots = append(sched.Shots, Shot{
		RowTones: bitmat.VecFromBits([]int{1, 0}),
		ColTones: bitmat.VecFromBits([]int{1, 0}),
	})
	err := sched.Verify(NewArray(2, 2))
	if !errors.Is(err, ErrMissedTarget) {
		t.Fatalf("got %v, want ErrMissedTarget", err)
	}
}

func TestVerifyDetectsDoubleHit(t *testing.T) {
	target := bitmat.MustParse("1")
	sched := &Schedule{Target: target}
	shot := Shot{RowTones: bitmat.VecFromBits([]int{1}), ColTones: bitmat.VecFromBits([]int{1})}
	sched.Shots = append(sched.Shots, shot, shot)
	err := sched.Verify(NewArray(1, 1))
	if !errors.Is(err, ErrDoubleHit) {
		t.Fatalf("got %v, want ErrDoubleHit", err)
	}
}

func TestVerifyDetectsShapeMismatch(t *testing.T) {
	sched := &Schedule{Target: bitmat.New(2, 2)}
	err := sched.Verify(NewArray(3, 3))
	if !errors.Is(err, ErrShape) {
		t.Fatalf("got %v, want ErrShape", err)
	}
}

func TestVerifyDetectsVacantTarget(t *testing.T) {
	atoms := bitmat.MustParse("10\n11")
	target := bitmat.MustParse("01\n00") // target where no atom sits
	sched := &Schedule{Target: target}
	err := sched.Verify(NewArrayWithVacancies(atoms))
	if !errors.Is(err, ErrTargetVacant) {
		t.Fatalf("got %v, want ErrTargetVacant", err)
	}
}

func TestVacanciesAbsorbExtraPulses(t *testing.T) {
	// A shot covering a vacancy is fine: the empty site is a don't-care.
	atoms := bitmat.MustParse("11\n10") // (1,1) vacant
	target := bitmat.MustParse("11\n10")
	sched := &Schedule{Target: target}
	sched.Shots = append(sched.Shots,
		Shot{RowTones: bitmat.VecFromBits([]int{1, 0}), ColTones: bitmat.VecFromBits([]int{1, 1})},
		Shot{RowTones: bitmat.VecFromBits([]int{0, 1}), ColTones: bitmat.VecFromBits([]int{1, 1})},
	)
	// Second shot would hit (1,1), but it is vacant.
	if err := sched.Verify(NewArrayWithVacancies(atoms)); err != nil {
		t.Fatalf("vacancy not treated as don't-care: %v", err)
	}
}

func TestPulseCounts(t *testing.T) {
	sched := &Schedule{Target: bitmat.AllOnes(2, 2)}
	sched.Shots = append(sched.Shots, Shot{
		RowTones: bitmat.VecFromBits([]int{1, 1}),
		ColTones: bitmat.VecFromBits([]int{1, 1}),
	})
	counts := sched.PulseCounts(NewArray(2, 2))
	for i := range counts {
		for j := range counts[i] {
			if counts[i][j] != 1 {
				t.Fatalf("count[%d][%d] = %d", i, j, counts[i][j])
			}
		}
	}
}

func TestStats(t *testing.T) {
	p := fig1bPartition(t)
	sched := Compile(p)
	st := sched.ComputeStats()
	if st.Depth != sched.Depth() {
		t.Fatal("depth mismatch")
	}
	if st.TotalTones <= 0 || st.MaxTones <= 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMinimizeReconfigKeepsValidity(t *testing.T) {
	p := fig1bPartition(t)
	sched := Compile(p)
	before := sched.ComputeStats()
	sched.MinimizeReconfig()
	after := sched.ComputeStats()
	if after.Depth != before.Depth {
		t.Fatal("reorder changed depth")
	}
	if after.ReconfigCost > before.ReconfigCost {
		t.Fatalf("reorder increased cost: %d → %d", before.ReconfigCost, after.ReconfigCost)
	}
	if err := sched.Verify(NewArray(6, 6)); err != nil {
		t.Fatalf("reorder broke schedule: %v", err)
	}
}

func TestRenderShowsFrames(t *testing.T) {
	p := fig1bPartition(t)
	sched := Compile(p)
	out := sched.Render(NewArray(6, 6))
	if !strings.Contains(out, "shot 0") || !strings.Contains(out, "#") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

// Property: compiling any valid partition yields a schedule that verifies on
// a full array.
func TestQuickCompileVerifies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(8), 1+rng.Intn(8), rng.Float64())
		p := rowpack.Pack(m, rowpack.Options{Trials: 2, Seed: seed})
		if p.Validate() != nil {
			return false
		}
		return Compile(p).Verify(NewArray(m.Rows(), m.Cols())) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: total pulses delivered equals the number of target 1s on a full
// array for a compiled valid partition.
func TestQuickPulseConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := bitmat.Random(rng, 1+rng.Intn(8), 1+rng.Intn(8), rng.Float64())
		p := rowpack.Pack(m, rowpack.Options{Trials: 2, Seed: seed})
		counts := Compile(p).PulseCounts(NewArray(m.Rows(), m.Cols()))
		total := 0
		for _, row := range counts {
			for _, c := range row {
				total += c
			}
		}
		return total == m.Ones()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
