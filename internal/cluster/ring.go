package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend owns
// ringReplicas virtual points, so keys spread evenly even with two or three
// backends, and adding or removing one backend moves only ~1/N of the key
// space — the rest of the fleet keeps its cache-warm shards.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // number of distinct backends
}

type ringPoint struct {
	hash uint64
	idx  int
}

// ringReplicas is the virtual-node count per backend. 64 keeps the maximum
// shard imbalance under ~20% for small fleets while the ring stays tiny
// (N×64 points, walked once per request).
const ringReplicas = 64

func newRing(names []string) *ring {
	r := &ring{n: len(names)}
	r.points = make([]ringPoint, 0, len(names)*ringReplicas)
	for i, name := range names {
		for v := 0; v < ringReplicas; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", name, v)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// candidates returns every backend index in ring order starting at key's
// position: the first element is the key's home shard (where equivalent
// requests deduplicate), the rest are the deterministic failover/hedge
// order.
func (r *ring) candidates(key string) []int {
	h := fnv.New64a()
	h.Write([]byte(key))
	k := h.Sum64()
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= k })
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for j := 0; j < len(r.points) && len(out) < r.n; j++ {
		p := r.points[(i+j)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}
