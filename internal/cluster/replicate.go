package cluster

// Cache-fill replication: after a backend proves a fresh optimal result,
// the gateway asynchronously POSTs it to the fingerprint's ring successors
// via /v1/fill. The successors are exactly the shards a failover or hedge
// would route this key to, so when the home shard dies its keys land on
// caches that already hold the answers — the durability story (each
// backend's WAL) covers restarts, replication covers machine loss.
//
// Replication is strictly best-effort and off the request path: fills ride
// a bounded worker pool (excess fills are dropped, not queued), use a plain
// HTTP client with their own timeout, and never feed circuit breakers or
// consume the per-backend in-flight budget — a down replication target must
// not look like a down serving backend.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/wire"
)

// maxConcurrentFills bounds in-flight background fill requests across the
// whole gateway. Beyond it, fills are dropped: a fill is an optimization,
// and the next solve of the same key will simply replicate again.
const maxConcurrentFills = 32

// replicate fans a freshly solved canonical result out to the key's ring
// successors, skipping the backend that served it. canonical is the
// canonical matrix in text form (the forwarded payload); canon must be the
// backend's canonical-space result, not the lifted one.
func (g *Gateway) replicate(hash, canonical string, canon *wire.ResultJSON, served *backend) {
	if g.cfg.ReplicateFills <= 0 || hash == "" || canonical == "" {
		return
	}
	var targets []*backend
	for _, i := range g.ring.candidates(hash) {
		b := g.backends[i]
		if b == served {
			continue
		}
		targets = append(targets, b)
		if len(targets) == g.cfg.ReplicateFills {
			break
		}
	}
	if len(targets) == 0 {
		return
	}
	body, err := json.Marshal(&wire.FillRequest{Fingerprint: hash, Matrix: canonical, Result: canon})
	if err != nil {
		return
	}
	for _, b := range targets {
		select {
		case g.fillSem <- struct{}{}:
		default:
			g.met.fillsDropped.Add(1)
			continue
		}
		g.fillWG.Add(1)
		go func(b *backend) {
			defer g.fillWG.Done()
			defer func() { <-g.fillSem }()
			g.sendFill(b, body)
		}(b)
	}
}

// sendFill delivers one fill to one backend. Failures are counted and
// logged, nothing more: the target being down, draining, or rejecting is
// handled by simply not being warmed.
func (g *Gateway) sendFill(b *backend, body []byte) {
	g.met.fillsSent.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.FillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/fill", bytes.NewReader(body))
	if err != nil {
		g.met.fillsFailed.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		g.met.fillsFailed.Add(1)
		g.cfg.Logger.Printf("fill %s: %v", b.url, err)
		return
	}
	defer resp.Body.Close()
	fbody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		g.met.fillsFailed.Add(1)
		g.cfg.Logger.Printf("fill %s: status %d: %s", b.url, resp.StatusCode, errorBody(fbody))
		return
	}
	var fr wire.FillResponse
	if err := json.Unmarshal(fbody, &fr); err == nil && fr.Stored {
		g.met.fillsStored.Add(1)
	} else {
		g.met.fillsDuplicate.Add(1)
	}
}

// drainFills waits for in-flight background fills (test hook; production
// shutdown doesn't need to wait — fills are best-effort).
func (g *Gateway) drainFills() { g.fillWG.Wait() }
