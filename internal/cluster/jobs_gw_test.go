package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/server"
	"repro/internal/wire"
)

// newJobCluster is newTestCluster with a custom backend config (tenant maps,
// concurrency caps) shared by every backend.
func newJobCluster(t *testing.T, n int, scfg server.Config, gcfg Config) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		s := server.New(scfg)
		bts := httptest.NewServer(s.Handler())
		t.Cleanup(bts.Close)
		tc.servers = append(tc.servers, s)
		tc.backends = append(tc.backends, bts)
		gcfg.Backends = append(gcfg.Backends, bts.URL)
	}
	if gcfg.ProbeInterval == 0 {
		gcfg.ProbeInterval = -1
	}
	if gcfg.HedgeAfter == 0 {
		gcfg.HedgeAfter = -1
	}
	gw, err := New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	tc.gw = gw
	tc.ts = httptest.NewServer(gw.Handler())
	t.Cleanup(tc.ts.Close)
	return tc
}

// gwHardMatrix is a reproducible instance whose exact solve takes long
// enough (~1s) to cancel mid-flight through the proxy.
func gwHardMatrix() *bitmat.Matrix {
	return bitmat.Random(rand.New(rand.NewSource(6509)), 10, 10, 0.55)
}

// jobCall sends one job-API request with optional Bearer auth and returns
// the response and body.
func jobCall(t *testing.T, method, url, key string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeGWJob(t *testing.T, data []byte) *wire.JobJSON {
	t.Helper()
	var j wire.JobJSON
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatalf("bad job JSON: %v\n%s", err, data)
	}
	return &j
}

// waitGWJob polls GET /v1/jobs/{id} until the job reaches a terminal state.
func waitGWJob(t *testing.T, base, id, key string) *wire.JobJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := jobCall(t, http.MethodGet, base+"/v1/jobs/"+id, key, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, resp.StatusCode, body)
		}
		j := decodeGWJob(t, body)
		if wire.JobTerminal(j.State) {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return nil
}

func TestGatewayJobLifecycleLiftsAndSticks(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})

	// Submit a permuted Fig.1b: the gateway must forward the canonical form
	// and lift the terminal result back onto this exact matrix.
	m := permute(bitmat.MustParse(fig1b), rand.New(rand.NewSource(11)))
	resp, body := jobCall(t, http.MethodPost, tc.ts.URL+"/v1/jobs", "",
		wire.JobRequest{API: wire.V1, Matrix: m.String()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	j := decodeGWJob(t, body)
	if !strings.HasPrefix(j.ID, "gw-") {
		t.Fatalf("job ID %q not gateway-minted", j.ID)
	}
	if j.API != wire.V1 || j.Tenant != "default" {
		t.Fatalf("submit snapshot: %+v", j)
	}

	done := waitGWJob(t, tc.ts.URL, j.ID, "")
	if done.State != wire.JobDone || done.Result == nil {
		t.Fatalf("terminal job: %+v", done)
	}
	if done.ID != j.ID {
		t.Fatalf("poll rewrote ID %q -> %q", j.ID, done.ID)
	}
	if done.Result.Depth != 5 || !done.Result.Optimal {
		t.Fatalf("job result: %+v", done.Result)
	}
	assertPartitionCovers(t, m, done.Result.Partition)

	// The event stream's terminal frame must carry the same lifted result
	// under the gateway ID.
	ev := streamGWTerminal(t, tc.ts.URL, j.ID, "")
	if ev.Job == nil || ev.Job.ID != j.ID || ev.Job.State != wire.JobDone {
		t.Fatalf("terminal event: %+v", ev)
	}
	if ev.Job.Result == nil || ev.Job.Result.Depth != 5 {
		t.Fatalf("terminal event result: %+v", ev.Job.Result)
	}
	assertPartitionCovers(t, m, ev.Job.Result.Partition)

	// The job path shares the sync path's canonical key space: the same
	// matrix submitted as a plain solve is a fleet cache hit.
	sresp, sbody := postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: m.String()})
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("solve after job: status %d: %s", sresp.StatusCode, sbody)
	}
	if res := decodeResult(t, sbody); !res.CacheHit {
		t.Fatalf("sync solve after job missed the cache: %+v", res)
	}
	if n := tc.fleetSolves(); n != 1 {
		t.Fatalf("fleet ran %d pipeline solves, want 1", n)
	}

	snap := tc.gw.MetricsSnapshot()
	if snap.Jobs.Submitted < 1 || snap.Jobs.Accepted < 1 || snap.Jobs.Streams < 1 || snap.Jobs.Routes < 1 {
		t.Fatalf("job metrics not recorded: %+v", snap.Jobs)
	}
}

// streamGWTerminal reads GET /v1/jobs/{id}/events until the terminal frame.
func streamGWTerminal(t *testing.T, base, id, key string) *wire.JobEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lastSeq := int64(-1)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev wire.JobEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad event JSON: %v\n%s", err, data)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("event seq went backwards: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Job != nil {
			return &ev
		}
	}
	t.Fatalf("stream ended without a terminal frame: %v", sc.Err())
	return nil
}

func TestGatewayJobSubmitFailsOverWhenHomeDown(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	req := wire.JobRequest{Matrix: fig1b}
	m, gerr := tc.gw.requestMatrix(req.SolveRequest())
	if gerr != nil {
		t.Fatal(gerr.msg)
	}
	it := prepare(req.SolveRequest(), m)
	order, _ := tc.gw.candidateOrder(it.fp.Hash)

	// Kill the fingerprint's home backend: the sequential submit walk must
	// offer the job to the next candidate instead of failing.
	for i, bts := range tc.backends {
		if tc.gw.backends[i] == order[0] {
			bts.Close()
		}
	}
	resp, body := jobCall(t, http.MethodPost, tc.ts.URL+"/v1/jobs", "", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with home down: status %d: %s", resp.StatusCode, body)
	}
	j := decodeGWJob(t, body)
	done := waitGWJob(t, tc.ts.URL, j.ID, "")
	if done.State != wire.JobDone || done.Result == nil || done.Result.Depth != 5 {
		t.Fatalf("failover job: %+v", done)
	}
}

func TestGatewayJobUnknownIDIsCoded404(t *testing.T) {
	tc := newTestCluster(t, 1, Config{})
	for _, call := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/gw-ffffffff"},
		{http.MethodDelete, "/v1/jobs/gw-ffffffff"},
		{http.MethodGet, "/v1/jobs/gw-ffffffff/events"},
	} {
		resp, body := jobCall(t, call.method, tc.ts.URL+call.path, "", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: status %d", call.method, call.path, resp.StatusCode)
		}
		var e wire.ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Code != wire.CodeNotFound {
			t.Fatalf("%s %s: body %s", call.method, call.path, body)
		}
	}
}

func TestGatewayJobCancelPropagates(t *testing.T) {
	tc := newTestCluster(t, 1, Config{})
	resp, body := jobCall(t, http.MethodPost, tc.ts.URL+"/v1/jobs", "",
		wire.JobRequest{Matrix: gwHardMatrix().String()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	j := decodeGWJob(t, body)

	// Wait for the solve to actually start, then cancel through the proxy.
	deadline := time.Now().Add(10 * time.Second)
	for {
		gr, gb := jobCall(t, http.MethodGet, tc.ts.URL+"/v1/jobs/"+j.ID, "", nil)
		if gr.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d: %s", gr.StatusCode, gb)
		}
		if decodeGWJob(t, gb).State == wire.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	dr, db := jobCall(t, http.MethodDelete, tc.ts.URL+"/v1/jobs/"+j.ID, "", nil)
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d: %s", dr.StatusCode, db)
	}
	done := waitGWJob(t, tc.ts.URL, j.ID, "")
	if done.State != wire.JobCanceled {
		t.Fatalf("after cancel: %+v", done)
	}
	if done.ID != j.ID {
		t.Fatalf("cancel rewrote ID %q -> %q", j.ID, done.ID)
	}
}

func TestGatewayJobQuotaRejectionCarriesCodeThroughProxy(t *testing.T) {
	tc := newJobCluster(t, 1, server.Config{
		MaxQueue: 256,
		Tenants: []server.TenantConfig{
			{Name: "acme", Keys: []string{"k-acme"}, Weight: 1, Quota: 1},
		},
	}, Config{})

	// First job fills acme's quota of one outstanding job.
	resp, body := jobCall(t, http.MethodPost, tc.ts.URL+"/v1/jobs", "k-acme",
		wire.JobRequest{Matrix: gwHardMatrix().String()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, body)
	}
	j := decodeGWJob(t, body)
	if j.Tenant != "acme" {
		t.Fatalf("auth not forwarded: tenant %q", j.Tenant)
	}

	// Second must be the backend's 429 relayed with its machine-readable
	// code and a Retry-After hint.
	resp2, body2 := jobCall(t, http.MethodPost, tc.ts.URL+"/v1/jobs", "k-acme",
		wire.JobRequest{Matrix: fig1b})
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d: %s", resp2.StatusCode, body2)
	}
	var e wire.ErrorResponse
	if err := json.Unmarshal(body2, &e); err != nil || e.Code != wire.CodeQuotaExceeded {
		t.Fatalf("over-quota body: %s", body2)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("429 relayed without Retry-After")
	}

	// Tenant visibility holds through the proxy: another key cannot see
	// acme's job.
	nr, _ := jobCall(t, http.MethodGet, tc.ts.URL+"/v1/jobs/"+j.ID, "", nil)
	if nr.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant poll: status %d, want 404", nr.StatusCode)
	}
	if wj := waitGWJob(t, tc.ts.URL, j.ID, "k-acme"); wj.State != wire.JobDone {
		t.Fatalf("quota job: %+v", wj)
	}
}
