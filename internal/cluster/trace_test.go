package cluster

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/obs"
	"repro/internal/wire"
)

// gap8 needs real SAT probes (heuristic depth > rank bound), so its trace
// carries probe spans and progress samples — the cross-tier acceptance shape.
const gap8 = `10110101
01101110
11010011
00111101
11101010
01011101
10110110
01101011`

func spanNames(tj *obs.TraceJSON) map[string]int {
	names := make(map[string]int)
	for _, sp := range tj.Spans {
		names[sp.Name]++
	}
	return names
}

// TestGatewayStitchedTrace is the end-to-end observability acceptance test:
// one solve through the gateway must yield ONE trace on the gateway's
// /v1/debug/traces containing the gateway root, the proxy span, and the
// backend's whole subtree (solve, block, probe) plus solver progress — all
// under a single trace ID, linked into a single tree.
func TestGatewayStitchedTrace(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	resp, body := postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: gap8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if res.Depth != 8 {
		t.Fatalf("depth %d, want 8", res.Depth)
	}
	// The client must never see the stitched payload.
	if res.Trace != nil {
		t.Fatalf("gateway leaked the trace to the client")
	}

	httpResp, err := http.Get(tc.ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var traces obs.TracesJSON
	if err := json.NewDecoder(httpResp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Recent) != 1 {
		t.Fatalf("%d traces after one solve, want 1", len(traces.Recent))
	}
	tj := traces.Recent[0]
	if tj.Name != "gw.solve" {
		t.Fatalf("trace name %q, want gw.solve", tj.Name)
	}
	names := spanNames(tj)
	for _, want := range []string{"gw.solve", "proxy", "solve", "block", "probe"} {
		if names[want] == 0 {
			t.Fatalf("stitched trace missing %q span; have %v", want, names)
		}
	}
	if len(tj.Progress) == 0 {
		t.Fatalf("stitched trace carries no solver progress samples")
	}

	// The graft must link: the backend root's parent is the proxy span, the
	// proxy's parent the gateway root, so the tree assembles with one root.
	byID := make(map[string]obs.SpanJSON, len(tj.Spans))
	for _, sp := range tj.Spans {
		byID[sp.ID] = sp
	}
	var solveSpan obs.SpanJSON
	for _, sp := range tj.Spans {
		if sp.Name == "solve" {
			solveSpan = sp
		}
	}
	proxy, ok := byID[solveSpan.Parent]
	if !ok || proxy.Name != "proxy" {
		t.Fatalf("backend root's parent is %+v, want the proxy span", proxy)
	}
	gwRoot, ok := byID[proxy.Parent]
	if !ok || gwRoot.Name != "gw.solve" {
		t.Fatalf("proxy's parent is %+v, want the gateway root", gwRoot)
	}
	if gwRoot.Parent != "" {
		t.Fatalf("gateway root has a parent %q", gwRoot.Parent)
	}

	// The backend records its half in its own ring too (same trace ID) —
	// the cross-tier correlation an operator pivots on.
	backendSaw := false
	for _, s := range tc.servers {
		for _, btj := range s.Tracer().Traces().Recent {
			if btj.TraceID == tj.TraceID {
				backendSaw = true
			}
		}
	}
	if !backendSaw {
		t.Fatalf("no backend recorded trace %s", tj.TraceID)
	}
}

// TestGatewayMetricsLatencyHistograms: the gateway snapshot carries its own
// end-to-end histogram plus per-backend and merged proxy round-trip ones.
func TestGatewayMetricsLatencyHistograms(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	for i := 0; i < 2; i++ {
		postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	}
	snap := tc.gw.MetricsSnapshot()
	if snap.Latency.Count != 2 || snap.Latency.P50NS <= 0 {
		t.Fatalf("gateway latency snapshot: %+v", snap.Latency)
	}
	// First solve forwarded, second was a local cache hit: exactly one
	// proxied attempt across the fleet.
	if snap.Proxy.Count != 1 {
		t.Fatalf("proxy count %d, want 1", snap.Proxy.Count)
	}
	var perBackend int64
	for _, b := range snap.Backends {
		perBackend += b.Latency.Count
	}
	if perBackend != snap.Proxy.Count {
		t.Fatalf("per-backend latency total %d != merged proxy count %d",
			perBackend, snap.Proxy.Count)
	}
}

// TestGatewayBatchTraced: a traced batch records one gw.batch trace with the
// backend subtrees of each sub-batch stitched in (no client-visible traces).
func TestGatewayBatchTraced(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	req := wire.BatchRequest{Requests: []wire.SolveRequest{
		{Matrix: fig1b}, {Matrix: "11\n01"},
	}}
	resp, body := postJSON(t, tc.ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var batch wire.BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	for i, item := range batch.Results {
		if item.Error != "" {
			t.Fatalf("item %d: %s", i, item.Error)
		}
		if item.Result.Trace != nil {
			t.Fatalf("item %d leaked a trace", i)
		}
	}
	found := false
	for _, tj := range tc.gw.cfg.Tracer.Traces().Recent {
		if tj.Name == "gw.batch" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no gw.batch trace recorded")
	}
}
