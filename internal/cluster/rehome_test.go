package cluster

import (
	"net/http"
	"regexp"
	"testing"

	"repro/internal/wire"
)

// TestGatewayJobIDsUnguessable pins the gateway ID policy: 64 bits of
// crypto/rand, not a guessable counter.
func TestGatewayJobIDsUnguessable(t *testing.T) {
	tc := newTestCluster(t, 1, Config{})
	format := regexp.MustCompile(`^gw-[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		resp, body := jobCall(t, http.MethodPost, tc.ts.URL+"/v1/jobs", "",
			wire.JobRequest{Matrix: fig1b})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, body)
		}
		j := decodeGWJob(t, body)
		if !format.MatchString(j.ID) {
			t.Fatalf("job ID %q not crypto-random format", j.ID)
		}
		if seen[j.ID] {
			t.Fatalf("duplicate gateway job ID %q", j.ID)
		}
		seen[j.ID] = true
	}
}

// TestJobTableEvictsTerminalFirst is the satellite regression: a full table
// must shed finished jobs before live ones. The pre-fix FIFO eviction
// dropped the oldest entry regardless of state, killing the route of a
// still-streaming job whenever a submit burst arrived.
func TestJobTableEvictsTerminalFirst(t *testing.T) {
	tbl := newJobTable(2)
	live := &jobEntry{}
	doneE := &jobEntry{}
	liveID := tbl.add(live)
	doneID := tbl.add(doneE)
	doneE.markTerminal()

	newID := tbl.add(&jobEntry{})
	if tbl.get(liveID) == nil {
		t.Fatal("live (oldest) route evicted while a terminal route remained")
	}
	if tbl.get(doneID) != nil {
		t.Fatal("terminal route survived eviction")
	}
	if tbl.get(newID) == nil {
		t.Fatal("new route missing")
	}

	// With only live entries left, eviction falls back to FIFO.
	extraID := tbl.add(&jobEntry{})
	if tbl.get(liveID) != nil {
		t.Fatal("all-live table did not fall back to FIFO eviction")
	}
	if tbl.get(newID) == nil || tbl.get(extraID) == nil {
		t.Fatal("FIFO fallback evicted the wrong entries")
	}
}

// TestGatewayJobFloodKeepsLiveRoute floods the route table past its cap
// while a slow job is still running: every flood job is polled to terminal,
// so eviction has finished routes to shed and the live job stays reachable.
func TestGatewayJobFloodKeepsLiveRoute(t *testing.T) {
	tc := newTestCluster(t, 1, Config{MaxJobRoutes: 3})

	resp, body := jobCall(t, http.MethodPost, tc.ts.URL+"/v1/jobs", "",
		wire.JobRequest{Matrix: gwHardMatrix().String()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit slow job: status %d: %s", resp.StatusCode, body)
	}
	slow := decodeGWJob(t, body)

	for i := 0; i < 6; i++ {
		fr, fb := jobCall(t, http.MethodPost, tc.ts.URL+"/v1/jobs", "",
			wire.JobRequest{Matrix: fig1b})
		if fr.StatusCode != http.StatusAccepted {
			t.Fatalf("flood submit %d: status %d: %s", i, fr.StatusCode, fb)
		}
		fj := decodeGWJob(t, fb)
		waitGWJob(t, tc.ts.URL, fj.ID, "") // poll to terminal: marks the route evictable
	}

	gr, gb := jobCall(t, http.MethodGet, tc.ts.URL+"/v1/jobs/"+slow.ID, "", nil)
	if gr.StatusCode != http.StatusOK {
		t.Fatalf("live job lost its route after flood: status %d: %s", gr.StatusCode, gb)
	}
	if done := waitGWJob(t, tc.ts.URL, slow.ID, ""); done.State != wire.JobDone {
		t.Fatalf("slow job after flood: %+v", done)
	}
}

// TestGatewayRehomesJobWhenHomeDies kills a job's home backend mid-solve
// and asserts a single gateway poll answers with a live re-homed snapshot
// (not 502), the job still reaches a terminal state under the same gateway
// ID, and the re-home is counted in /v1/metrics.
func TestGatewayRehomesJobWhenHomeDies(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})

	resp, body := jobCall(t, http.MethodPost, tc.ts.URL+"/v1/jobs", "",
		wire.JobRequest{Matrix: gwHardMatrix().String()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	j := decodeGWJob(t, body)

	e := tc.gw.jobs.get(j.ID)
	if e == nil {
		t.Fatal("no route for accepted job")
	}
	home, _ := e.route()
	for i := range tc.backends {
		if tc.gw.backends[i] == home {
			tc.backends[i].Close() // kill -9 the home: refuses all connections
		}
	}

	// One poll must re-home and answer 200 with a live snapshot.
	gr, gb := jobCall(t, http.MethodGet, tc.ts.URL+"/v1/jobs/"+j.ID, "", nil)
	if gr.StatusCode != http.StatusOK {
		t.Fatalf("poll after home death: status %d: %s", gr.StatusCode, gb)
	}
	snap := decodeGWJob(t, gb)
	if !snap.Rehomed {
		t.Fatalf("snapshot after home death not flagged rehomed: %+v", snap)
	}
	if snap.ID != j.ID {
		t.Fatalf("re-home changed the gateway ID %q -> %q", j.ID, snap.ID)
	}
	nb, _ := e.route()
	if nb == home {
		t.Fatal("route still points at the dead backend")
	}

	done := waitGWJob(t, tc.ts.URL, j.ID, "")
	if done.State != wire.JobDone || done.Result == nil {
		t.Fatalf("re-homed job: %+v", done)
	}
	if !done.Rehomed {
		t.Fatalf("terminal snapshot lost the rehomed flag: %+v", done)
	}
	if m := tc.gw.MetricsSnapshot(); m.Jobs.Rehomed != 1 {
		t.Fatalf("jobs.rehomed = %d, want 1", m.Jobs.Rehomed)
	}
}
