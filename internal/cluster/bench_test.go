package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/server"
)

func benchMatrix() *bitmat.Matrix {
	return bitmat.MustParse("101100\n010011\n101010\n010101\n111000\n000111")
}

func benchPermutations(m *bitmat.Matrix, n int) [][]byte {
	rng := rand.New(rand.NewSource(1))
	bodies := make([][]byte, n)
	for i := range bodies {
		body, err := json.Marshal(map[string]string{"matrix": permute(m, rng).String()})
		if err != nil {
			panic(err)
		}
		bodies[i] = body
	}
	return bodies
}

func benchGateway(b *testing.B, localCache int) (*Gateway, *httptest.Server) {
	b.Helper()
	s := server.New(server.Config{})
	bts := httptest.NewServer(s.Handler())
	b.Cleanup(bts.Close)
	gw, err := New(Config{
		Backends:       []string{bts.URL},
		ProbeInterval:  -1,
		HedgeAfter:     -1,
		LocalCacheSize: localCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(gw.Close)
	gts := httptest.NewServer(gw.Handler())
	b.Cleanup(gts.Close)
	return gw, gts
}

func benchPost(b *testing.B, url string, body []byte, wantHit bool) {
	b.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var res struct {
		CacheHit bool `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	if res.CacheHit != wantHit {
		b.Fatalf("cache_hit = %v, want %v", res.CacheHit, wantHit)
	}
}

// BenchmarkGatewayLocalCacheHit measures a permuted resubmission served
// entirely from the gateway-local proved-optimal LRU: one HTTP hop,
// fingerprint + lift, no backend traffic.
func BenchmarkGatewayLocalCacheHit(b *testing.B) {
	_, gts := benchGateway(b, 0) // default local cache on
	m := benchMatrix()
	bodies := benchPermutations(m, 16)
	benchPost(b, gts.URL, bodies[0], false) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, gts.URL, bodies[1+i%(len(bodies)-1)], true)
	}
}

// BenchmarkGatewayProxyCacheHit measures the same resubmission with the
// local cache disabled: two HTTP hops (client→gateway→shard), the shard's
// fingerprint cache doing the work — the steady-state cost of a hit that
// lands on a gateway that has not seen the pattern.
func BenchmarkGatewayProxyCacheHit(b *testing.B) {
	_, gts := benchGateway(b, -1) // local cache off: always forward
	m := benchMatrix()
	bodies := benchPermutations(m, 16)
	benchPost(b, gts.URL, bodies[0], false) // warm the shard cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, gts.URL, bodies[1+i%(len(bodies)-1)], true)
	}
}

// BenchmarkGatewayRingCandidates isolates the per-request routing cost.
func BenchmarkGatewayRingCandidates(b *testing.B) {
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("http://backend-%d:8421", i)
	}
	r := newRing(names)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := r.candidates(keys[i%len(keys)]); len(c) != len(names) {
			b.Fatal("short candidate list")
		}
	}
}
