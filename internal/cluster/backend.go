package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/obs"
)

// breakerState is the per-backend circuit-breaker position.
type breakerState int

const (
	// brClosed: requests flow normally; consecutive refusals are counted.
	brClosed breakerState = iota
	// brOpen: the backend refused BreakerThreshold requests in a row; skip
	// it until the cooldown elapses (other shards absorb its keys).
	brOpen
	// brHalfOpen: cooldown over; exactly one trial request probes the
	// backend. Success closes the breaker, failure re-opens it.
	brHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// backend is the gateway's view of one ebmfd instance: liveness from the
// healthz probe loop, a circuit breaker fed by request outcomes, and a
// bounded in-flight semaphore so a stalling backend cannot absorb the
// gateway's whole connection budget.
type backend struct {
	url      string
	inflight chan struct{} // MaxInflight tokens; holding one = request in flight
	healthy  atomic.Bool   // updated by the probe loop; optimistic at start

	mu          sync.Mutex
	state       breakerState
	consecFails int
	consecOpens int       // re-opens without an intervening success
	retryAt     time.Time // when an open breaker admits its half-open trial
	probing     bool      // a half-open trial is in flight

	requests atomic.Int64 // attempts sent (including failures)
	failures atomic.Int64 // attempts that ended in a refusal
	reopens  atomic.Int64 // open transitions (for metrics)

	// latency is the round-trip time of answered attempts (request sent to
	// body read), whatever the status code. Abandoned hedges and transport
	// errors never reach the observation, so the histogram reflects what the
	// backend actually served.
	latency obs.Histogram
}

func newBackend(url string, maxInflight int) *backend {
	b := &backend{url: url, inflight: make(chan struct{}, maxInflight)}
	b.healthy.Store(true)
	return b
}

// available reports, without mutating breaker state, whether this backend is
// worth trying in the preferred pass: probe-healthy and breaker not
// rejecting. Used only for candidate ordering; the authoritative (state
// consuming) gate is allow.
func (b *backend) available(now time.Time) bool {
	if !b.healthy.Load() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true
	case brOpen:
		return !now.Before(b.retryAt)
	default: // brHalfOpen
		return !b.probing
	}
}

// allow is the breaker gate consulted immediately before an attempt. In
// half-open it admits exactly one trial; open admits nothing until the
// cooldown deadline converts it to half-open.
func (b *backend) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true
	case brOpen:
		if now.Before(b.retryAt) {
			return false
		}
		b.state = brHalfOpen
		b.probing = true
		return true
	default: // brHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// absolve releases an attempt's breaker claim without a verdict: the
// attempt was abandoned by the gateway (hedge rival won, client gone), so
// it proves nothing about the backend. Without this a canceled half-open
// trial would leave the probing slot claimed and wedge the breaker.
func (b *backend) absolve() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == brHalfOpen {
		b.probing = false
	}
}

// report feeds one attempt outcome into the breaker. A success closes it
// from any state (and resets the backoff); a failure in half-open (or the
// threshold-th consecutive failure in closed) opens it. Each re-open
// without an intervening success doubles the cooldown — jittered, capped at
// 2^backoff.Shift× — so a backend that keeps failing its half-open trials
// is probed ever less often instead of on a fixed drumbeat.
func (b *backend) report(ok bool, now time.Time, threshold int, cooldown time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == brHalfOpen {
		b.probing = false
	}
	if ok {
		b.state = brClosed
		b.consecFails = 0
		b.consecOpens = 0
		return
	}
	b.consecFails++
	if b.state == brHalfOpen || (b.state == brClosed && b.consecFails >= threshold) {
		b.state = brOpen
		b.reopens.Add(1)
		b.retryAt = now.Add(backoff.Delay(cooldown, b.consecOpens, 0))
		b.consecOpens++
	}
}

// breakerStateNow returns the breaker position for metrics, accounting for
// an elapsed cooldown (an open breaker past its retry deadline reports
// half-open since the next request will be admitted as a trial).
func (b *backend) breakerStateNow(now time.Time) breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == brOpen && !now.Before(b.retryAt) {
		return brHalfOpen
	}
	return b.state
}

// probeMaxBackoff caps the probe backoff: an unhealthy backend is still
// re-checked at least this often, so recovery detection lags by at most
// ~30s however long the outage lasted.
const probeMaxBackoff = 30 * time.Second

// probeDelay is the jittered exponential backoff schedule for the healthz
// probe loop: the base interval while the backend answers, doubling per
// consecutive failure up to probeMaxBackoff (or the base interval itself
// when it is configured even longer). The jitter keeps a fleet of gateways
// from stampeding a backend the moment it comes back.
func probeDelay(base time.Duration, fails int) time.Duration {
	max := probeMaxBackoff
	if base > max {
		max = base
	}
	return backoff.Delay(base, fails, max)
}

// probeLoop polls GET /v1/healthz until ctx is canceled, flipping the
// backend's healthy flag. A draining backend answers 503 and is routed
// around before its listener ever disappears. Consecutive probe failures
// back the loop off exponentially (probeDelay): a dead backend costs a
// handful of connection attempts per half-minute, not per interval.
func (g *Gateway) probeLoop(ctx context.Context, b *backend) {
	fails := 0
	t := time.NewTimer(backoff.Jitter(g.cfg.ProbeInterval))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if g.probe(ctx, b) {
			fails = 0
		} else {
			fails++
		}
		t.Reset(probeDelay(g.cfg.ProbeInterval, fails))
	}
}

func (g *Gateway) probe(ctx context.Context, b *backend) bool {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if err == nil {
		resp.Body.Close()
	}
	if was := b.healthy.Swap(ok); was != ok {
		g.cfg.Logger.Printf("backend %s: healthy=%v", b.url, ok)
	}
	return ok
}
