package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// breakerState is the per-backend circuit-breaker position.
type breakerState int

const (
	// brClosed: requests flow normally; consecutive refusals are counted.
	brClosed breakerState = iota
	// brOpen: the backend refused BreakerThreshold requests in a row; skip
	// it until the cooldown elapses (other shards absorb its keys).
	brOpen
	// brHalfOpen: cooldown over; exactly one trial request probes the
	// backend. Success closes the breaker, failure re-opens it.
	brHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case brOpen:
		return "open"
	case brHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// backend is the gateway's view of one ebmfd instance: liveness from the
// healthz probe loop, a circuit breaker fed by request outcomes, and a
// bounded in-flight semaphore so a stalling backend cannot absorb the
// gateway's whole connection budget.
type backend struct {
	url      string
	inflight chan struct{} // MaxInflight tokens; holding one = request in flight
	healthy  atomic.Bool   // updated by the probe loop; optimistic at start

	mu          sync.Mutex
	state       breakerState
	consecFails int
	openedAt    time.Time
	probing     bool // a half-open trial is in flight

	requests atomic.Int64 // attempts sent (including failures)
	failures atomic.Int64 // attempts that ended in a refusal
}

func newBackend(url string, maxInflight int) *backend {
	b := &backend{url: url, inflight: make(chan struct{}, maxInflight)}
	b.healthy.Store(true)
	return b
}

// available reports, without mutating breaker state, whether this backend is
// worth trying in the preferred pass: probe-healthy and breaker not
// rejecting. Used only for candidate ordering; the authoritative (state
// consuming) gate is allow.
func (b *backend) available(now time.Time, cooldown time.Duration) bool {
	if !b.healthy.Load() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true
	case brOpen:
		return now.Sub(b.openedAt) >= cooldown
	default: // brHalfOpen
		return !b.probing
	}
}

// allow is the breaker gate consulted immediately before an attempt. In
// half-open it admits exactly one trial; open admits nothing until the
// cooldown converts it to half-open.
func (b *backend) allow(now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true
	case brOpen:
		if now.Sub(b.openedAt) < cooldown {
			return false
		}
		b.state = brHalfOpen
		b.probing = true
		return true
	default: // brHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// absolve releases an attempt's breaker claim without a verdict: the
// attempt was abandoned by the gateway (hedge rival won, client gone), so
// it proves nothing about the backend. Without this a canceled half-open
// trial would leave the probing slot claimed and wedge the breaker.
func (b *backend) absolve() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == brHalfOpen {
		b.probing = false
	}
}

// report feeds one attempt outcome into the breaker. A success closes it
// from any state; a failure in half-open (or the threshold-th consecutive
// failure in closed) opens it.
func (b *backend) report(ok bool, now time.Time, threshold int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == brHalfOpen {
		b.probing = false
	}
	if ok {
		b.state = brClosed
		b.consecFails = 0
		return
	}
	b.consecFails++
	if b.state == brHalfOpen || b.consecFails >= threshold {
		b.state = brOpen
		b.openedAt = now
	}
}

// breakerStateNow returns the breaker position for metrics, accounting for
// an elapsed cooldown (an open breaker past its cooldown reports half-open
// since the next request will be admitted as a trial).
func (b *backend) breakerStateNow(now time.Time, cooldown time.Duration) breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == brOpen && now.Sub(b.openedAt) >= cooldown {
		return brHalfOpen
	}
	return b.state
}

// probeLoop polls GET /v1/healthz every interval until ctx is canceled,
// flipping the backend's healthy flag. A draining backend answers 503 and is
// routed around before its listener ever disappears.
func (g *Gateway) probeLoop(ctx context.Context, b *backend) {
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.probe(ctx, b)
		}
	}
}

func (g *Gateway) probe(ctx context.Context, b *backend) {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url+"/v1/healthz", nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if err == nil {
		resp.Body.Close()
	}
	if was := b.healthy.Swap(ok); was != ok {
		g.cfg.Logger.Printf("backend %s: healthy=%v", b.url, ok)
	}
}
