package cluster

import (
	"fmt"
	"testing"
)

func TestRingCandidatesCoverAllBackendsDeterministically(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(names)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		c1 := r.candidates(key)
		c2 := r.candidates(key)
		if len(c1) != len(names) {
			t.Fatalf("key %q: %d candidates, want %d", key, len(c1), len(names))
		}
		seen := map[int]bool{}
		for j, idx := range c1 {
			if c2[j] != idx {
				t.Fatalf("key %q: candidate order not deterministic", key)
			}
			if seen[idx] {
				t.Fatalf("key %q: backend %d appears twice", key, idx)
			}
			seen[idx] = true
		}
	}
}

func TestRingSpreadsKeysAndKeepsAssignmentsStable(t *testing.T) {
	r3 := newRing([]string{"http://a:1", "http://b:1", "http://c:1"})
	counts := make([]int, 3)
	home3 := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("fp-%d", i)
		h := r3.candidates(key)[0]
		counts[h]++
		home3[key] = h
	}
	for i, c := range counts {
		if c < n/3/3 {
			t.Fatalf("backend %d owns only %d/%d keys — ring badly imbalanced: %v", i, c, n, counts)
		}
	}
	// Removing one backend must keep every key that did not live on it at
	// the same home (the consistent-hashing contract the shard caches rely
	// on). The removed backend's keys redistribute.
	r2 := newRing([]string{"http://a:1", "http://b:1"})
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("fp-%d", i)
		h := r2.candidates(key)[0]
		if home3[key] == 2 {
			continue // its shard is gone; any new home is fine
		}
		if h != home3[key] {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving backends after removing one", moved)
	}
}

func TestRingSingleBackend(t *testing.T) {
	r := newRing([]string{"http://only:1"})
	if c := r.candidates("anything"); len(c) != 1 || c[0] != 0 {
		t.Fatalf("candidates = %v, want [0]", c)
	}
}
