package cluster

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// gwMetrics holds the gateway's counters; all atomics, snapshotted without
// a lock (eventually consistent across fields, fine for monitoring).
type gwMetrics struct {
	solveRequests atomic.Int64
	batchRequests atomic.Int64
	badRequests   atomic.Int64
	failed        atomic.Int64 // requests/items with no authoritative answer

	jobSubmits   atomic.Int64 // POST /v1/jobs received
	jobsAccepted atomic.Int64 // submissions a backend accepted (202)
	jobStreams   atomic.Int64 // SSE event streams proxied
	jobsRehomed  atomic.Int64 // jobs resubmitted to a new backend after their home died

	localHits      atomic.Int64 // served from the gateway-local LRU
	remoteHits     atomic.Int64 // backend answered with cache_hit=true
	relayed        atomic.Int64 // inexact-fingerprint responses passed through unlifted
	hedges         atomic.Int64 // attempts launched by the hedge timer
	failovers      atomic.Int64 // attempts launched after a refusal
	inflightSpills atomic.Int64 // attempts skipped at the per-backend in-flight cap

	// Cache-fill replication counters.
	fillsSent      atomic.Int64 // fill requests issued to ring successors
	fillsStored    atomic.Int64 // fills the target stored (fresh for it)
	fillsDuplicate atomic.Int64 // fills the target already had
	fillsFailed    atomic.Int64 // fills refused or unreachable
	fillsDropped   atomic.Int64 // fills skipped at the concurrency cap

	// solveHist is the gateway's end-to-end /v1/solve latency (decode to
	// answer, local hits included). Per-backend round-trip histograms live on
	// the backends themselves (backend.latency).
	solveHist obs.Histogram
}

// MetricsSnapshot is the GET /v1/metrics response body: gateway-level
// counters plus the live per-backend state.
type MetricsSnapshot struct {
	UptimeMS int64            `json:"uptime_ms"`
	Requests GWRequestMetrics `json:"requests"`
	// Latency is end-to-end /v1/solve time at the gateway (local cache hits
	// included); Proxy merges every backend's round-trip histogram, so
	// Latency minus Proxy percentile-wise approximates gateway overhead.
	Latency     obs.HistSnapshot   `json:"latency"`
	Proxy       obs.HistSnapshot   `json:"proxy_latency"`
	Jobs        GWJobMetrics       `json:"jobs"`
	Routing     RoutingMetrics     `json:"routing"`
	Cache       GWCacheMetrics     `json:"cache"`
	Replication ReplicationMetrics `json:"replication"`
	Backends    []BackendStatus    `json:"backends"`
}

// ReplicationMetrics aggregates the cache-fill replication path.
type ReplicationMetrics struct {
	Targets   int   `json:"targets"` // configured successors per fresh result
	Sent      int64 `json:"sent"`
	Stored    int64 `json:"stored"`
	Duplicate int64 `json:"duplicate"`
	Failed    int64 `json:"failed"`
	Dropped   int64 `json:"dropped"`
}

// GWRequestMetrics counts gateway requests by disposition.
type GWRequestMetrics struct {
	Solve  int64 `json:"solve"`
	Batch  int64 `json:"batch"`
	Bad    int64 `json:"bad"`
	Failed int64 `json:"failed"`
}

// GWJobMetrics counts the async-job proxy path.
type GWJobMetrics struct {
	Submitted int64 `json:"submitted"`
	Accepted  int64 `json:"accepted"`
	Streams   int64 `json:"streams"`
	Rehomed   int64 `json:"rehomed"` // re-homed after a dead backend
	Routes    int   `json:"routes"`  // live gateway-ID → backend mappings
}

// RoutingMetrics aggregates the failover machinery's behaviour.
type RoutingMetrics struct {
	Hedges         int64 `json:"hedges"`
	Failovers      int64 `json:"failovers"`
	InflightSpills int64 `json:"inflight_spills"`
	Relayed        int64 `json:"relayed_inexact"`
}

// GWCacheMetrics splits hits between the gateway-local LRU and the
// backends' fingerprint caches (as observed through cache_hit responses).
type GWCacheMetrics struct {
	Local      LocalCacheStats `json:"local"`
	RemoteHits int64           `json:"remote_hits"`
}

// BackendStatus is one backend's live state.
type BackendStatus struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Breaker  string `json:"breaker"`
	Inflight int    `json:"inflight"`
	Requests int64  `json:"requests"`
	Failures int64  `json:"failures"`
	// Reopens counts breaker open transitions; climbing reopens with a
	// still-open breaker means the backoff is in its exponential phase.
	Reopens int64 `json:"reopens"`
	// Latency is this backend's answered-attempt round-trip histogram.
	Latency obs.HistSnapshot `json:"latency"`
}

// MetricsSnapshot assembles the /v1/metrics body.
func (g *Gateway) MetricsSnapshot() MetricsSnapshot {
	m := &g.met
	snap := MetricsSnapshot{
		UptimeMS: timeSince(g.started),
		Requests: GWRequestMetrics{
			Solve:  m.solveRequests.Load(),
			Batch:  m.batchRequests.Load(),
			Bad:    m.badRequests.Load(),
			Failed: m.failed.Load(),
		},
		Jobs: GWJobMetrics{
			Submitted: m.jobSubmits.Load(),
			Accepted:  m.jobsAccepted.Load(),
			Streams:   m.jobStreams.Load(),
			Rehomed:   m.jobsRehomed.Load(),
			Routes:    g.jobs.len(),
		},
		Routing: RoutingMetrics{
			Hedges:         m.hedges.Load(),
			Failovers:      m.failovers.Load(),
			InflightSpills: m.inflightSpills.Load(),
			Relayed:        m.relayed.Load(),
		},
		Cache: GWCacheMetrics{
			Local:      g.cache.stats(),
			RemoteHits: m.remoteHits.Load(),
		},
		Replication: ReplicationMetrics{
			Targets:   g.cfg.ReplicateFills,
			Sent:      m.fillsSent.Load(),
			Stored:    m.fillsStored.Load(),
			Duplicate: m.fillsDuplicate.Load(),
			Failed:    m.fillsFailed.Load(),
			Dropped:   m.fillsDropped.Load(),
		},
	}
	snap.Latency = m.solveHist.Snapshot()
	now := time.Now()
	var proxy obs.HistogramData
	for _, b := range g.backends {
		bd := b.latency.Data()
		proxy.Merge(bd)
		snap.Backends = append(snap.Backends, BackendStatus{
			URL:      b.url,
			Healthy:  b.healthy.Load(),
			Breaker:  b.breakerStateNow(now).String(),
			Inflight: len(b.inflight),
			Requests: b.requests.Load(),
			Failures: b.failures.Load(),
			Reopens:  b.reopens.Load(),
			Latency:  bd.Snapshot(),
		})
	}
	snap.Proxy = proxy.Snapshot()
	return snap
}

func timeSince(t time.Time) int64 { return time.Since(t).Milliseconds() }
