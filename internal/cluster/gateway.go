// Package cluster implements ebmfgw, the fingerprint-sharded gateway in
// front of a fleet of ebmfd backends. It speaks the same internal/wire
// schema on both sides, so ebmf/ebmfd clients work unchanged against it.
//
//	POST /v1/solve            routed by canonical fingerprint to one shard
//	POST /v1/batch            split across shards, merged in request order
//	POST /v1/jobs             async job submit, sticky-routed by fingerprint
//	GET  /v1/jobs/{id}        poll a proxied job on its home backend
//	DELETE /v1/jobs/{id}      cancel a proxied job
//	GET  /v1/jobs/{id}/events SSE passthrough with done-event lifting
//	GET  /v1/healthz          gateway liveness (+ healthy-backend count)
//	GET  /v1/metrics          gateway counters + per-backend state
//
// Jobs are sticky: the submit walks the ring sequentially (no hedging — a
// submit is not idempotent, racing it would run the solve twice) and the
// gateway remembers which backend accepted each job, so polls, cancels and
// event streams reach the same machine. Tenant API keys (Authorization /
// X-API-Key) forward unchanged on every proxied call: admission, QoS
// accounting and job visibility are the backend's decisions.
//
// The routing insight is that the canonical fingerprint (PR 3) is the
// perfect shard key: it is invariant under row/column permutation,
// duplication and zero padding, so permutation-equivalent requests from
// different users consistently land on the same backend — where its result
// cache and singleflight deduplicate them. The gateway forwards the
// *canonical* matrix (not the client's), so equivalent requests present
// byte-identical bodies to the shard, and lifts the shard's canonical-space
// partition back onto each client's matrix through the fingerprint maps
// (solvecache.LiftCanonical), re-validating on the way — a routing or cache
// bug degrades to an error, never to a wrong answer.
//
// Resilience, in front of the routing:
//
//   - Health probes: GET /v1/healthz per backend, backing off with jittered
//     exponential delays while a backend stays down (capped ~30s); draining
//     or dead backends drop out of the preferred candidate order.
//   - Circuit breakers: BreakerThreshold consecutive refusals open a
//     backend's breaker; after a jittered cooldown one half-open trial
//     request decides whether it closes again, and each failed trial
//     doubles the next cooldown.
//   - Bounded in-flight: at most MaxInflight gateway requests per backend;
//     excess spills to the next ring position instead of piling up.
//   - Hedged retry: when the home shard has not answered within HedgeAfter,
//     the same request is raced against the next ring position (safe
//     because results are deterministic — see DESIGN.md §10); an outright
//     refusal advances immediately. A request fails only when every
//     candidate backend has refused it.
//   - Cache-fill replication: each freshly proved-optimal result is pushed
//     asynchronously (POST /v1/fill) to the key's ReplicateFills ring
//     successors — exactly the shards a failover would choose — so losing
//     the home shard costs a warm cache hit, not a re-solve (replicate.go).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitmat"
	"repro/internal/obs"
	"repro/internal/solvecache"
	"repro/internal/wire"
)

// Config tunes the gateway. Backends is required; everything else defaults.
type Config struct {
	// Backends are the ebmfd base URLs (e.g. "http://10.0.0.7:8421") that
	// form the consistent-hash ring.
	Backends []string
	// HedgeAfter is how long the home shard may stay silent before the
	// request is raced against the next ring position (default 2s; negative
	// disables hedging — failover then happens only on outright refusal).
	HedgeAfter time.Duration
	// LocalCacheSize bounds the gateway-local LRU of proved-optimal results
	// (default 512 entries; negative disables the local cache).
	LocalCacheSize int
	// ProbeInterval is the healthz probe period (default 2s; negative
	// disables probing — backends then stay optimistically healthy and only
	// breakers shed them).
	ProbeInterval time.Duration
	// BreakerThreshold is the consecutive-refusal count that opens a
	// backend's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before admitting
	// one half-open trial (default 5s).
	BreakerCooldown time.Duration
	// MaxInflight bounds concurrent gateway requests per backend (default
	// 256); excess spills to the next ring position.
	MaxInflight int
	// MaxBodyBytes caps request bodies (default 4 MiB, matching ebmfd).
	MaxBodyBytes int64
	// MaxRespBytes caps backend response bodies read by the gateway
	// (default 64 MiB — large partitions are index lists).
	MaxRespBytes int64
	// MaxMatrixEntries caps rows×cols of a submitted matrix (default 1<<20).
	MaxMatrixEntries int
	// MaxBatch caps the number of requests in one batch (default 64).
	MaxBatch int
	// MaxJobRoutes caps the job → home-backend routing entries the gateway
	// retains (default 4096; the oldest routes are evicted first, after
	// which the job remains pollable directly on its backend).
	MaxJobRoutes int
	// ReplicateFills is how many ring successors receive an asynchronous
	// POST /v1/fill of each freshly proved-optimal result (default 1;
	// negative disables replication). Successor caches warm before any
	// failover happens, so losing the home shard costs the survivors a
	// cache lookup instead of a re-solve.
	ReplicateFills int
	// FillTimeout bounds one replication fill request (default 5s).
	FillTimeout time.Duration
	// Client issues the backend requests (default: a dedicated client with
	// per-host keep-alive pools and no global timeout — deadlines come from
	// request contexts and hedging).
	Client *http.Client
	// Logger receives health transitions and one line per request (default:
	// discard).
	Logger *log.Logger
	// Tracer records gateway traces for GET /v1/debug/traces. Each proxied
	// solve sends a traceparent header to its backend and grafts the spans
	// the backend returns, so a gateway trace shows the whole cross-tier
	// request (default: a tracer with obs defaults).
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 2 * time.Second
	}
	if c.LocalCacheSize == 0 {
		c.LocalCacheSize = 512
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.MaxRespBytes <= 0 {
		c.MaxRespBytes = 64 << 20
	}
	if c.MaxMatrixEntries <= 0 {
		c.MaxMatrixEntries = 1 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxJobRoutes <= 0 {
		c.MaxJobRoutes = 4096
	}
	if c.ReplicateFills == 0 {
		c.ReplicateFills = 1
	}
	if c.ReplicateFills < 0 {
		c.ReplicateFills = 0
	}
	if c.FillTimeout <= 0 {
		c.FillTimeout = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	if c.Tracer == nil {
		c.Tracer = obs.New(obs.Config{})
	}
	return c
}

// Gateway is the ebmfgw HTTP service. Create with New; serve via Handler;
// stop the probe loops with Close.
type Gateway struct {
	cfg      Config
	client   *http.Client
	backends []*backend
	ring     *ring
	cache    *localCache // nil when disabled
	jobs     *jobTable   // job ID → home backend routes
	mux      *http.ServeMux
	draining atomic.Bool
	started  time.Time
	stop     context.CancelFunc
	fillSem  chan struct{} // bounds concurrent background fill sends
	fillWG   sync.WaitGroup
	met      gwMetrics
}

// New builds a gateway over cfg.Backends and starts its health-probe loops.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	urls := make([]string, len(cfg.Backends))
	for i, u := range cfg.Backends {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: empty backend URL at position %d", i)
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		urls[i] = u
	}
	g := &Gateway{
		cfg:     cfg,
		client:  cfg.Client,
		ring:    newRing(urls),
		jobs:    newJobTable(cfg.MaxJobRoutes),
		mux:     http.NewServeMux(),
		started: time.Now(),
		fillSem: make(chan struct{}, maxConcurrentFills),
	}
	for _, u := range urls {
		g.backends = append(g.backends, newBackend(u, cfg.MaxInflight))
	}
	if cfg.LocalCacheSize > 0 {
		g.cache = newLocalCache(cfg.LocalCacheSize)
	}
	g.routes()
	ctx, cancel := context.WithCancel(context.Background())
	g.stop = cancel
	if cfg.ProbeInterval > 0 {
		for _, b := range g.backends {
			go g.probeLoop(ctx, b)
		}
	}
	return g, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.logged(g.mux) }

// Close stops the health-probe loops and waits for in-flight cache fills
// (each bounded by FillTimeout). In-flight requests are unaffected.
func (g *Gateway) Close() {
	g.stop()
	g.fillWG.Wait()
}

// BeginDrain makes the gateway reject new work with 503 (healthz flips so
// balancers stop routing here). Pair with http.Server.Shutdown.
func (g *Gateway) BeginDrain() { g.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (g *Gateway) Draining() bool { return g.draining.Load() }

func (g *Gateway) routes() {
	g.mux.HandleFunc("POST /v1/solve", g.handleSolve)
	g.mux.HandleFunc("POST /v1/batch", g.handleBatch)
	g.mux.HandleFunc("POST /v1/jobs", g.handleJobSubmit)
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.handleJobGet)
	g.mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleJobCancel)
	g.mux.HandleFunc("GET /v1/jobs/{id}/events", g.handleJobEvents)
	g.mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /v1/metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /v1/debug/traces", g.handleTraces)
}

// ---------------------------------------------------------------------------
// Forwarding: candidate order, attempts, hedged failover.

// Attempt-classification sentinels; all of them mean "this backend refused,
// try the next one".
var (
	errInflightFull = errors.New("cluster: backend at in-flight limit")
	errBreakerOpen  = errors.New("cluster: breaker open")
	errAllRefused   = errors.New("cluster: every candidate backend refused the request")
)

// fwdResult is one backend attempt's outcome. An attempt is authoritative
// when the backend produced an answer the gateway should relay (2xx, or a
// 4xx other than 429 — a different shard would answer identically); it is a
// refusal when the backend is unreachable, overloaded (429), draining (503)
// or failing (5xx).
type fwdResult struct {
	status  int
	body    []byte
	err     error
	backend *backend
}

func (r fwdResult) authoritative() bool {
	return r.err == nil && r.status < 500 && r.status != http.StatusTooManyRequests
}

// attempt sends one request to one backend, feeding the breaker and
// in-flight bookkeeping. force bypasses the breaker gate (last-resort pass:
// a request may only be failed once every candidate truly refused it).
//
// This is the single choke point of backend traffic, so the tracing header
// and the per-backend latency histogram both live here: a traced request
// opens a "proxy" span and hands it to the backend as a traceparent header,
// and every answered attempt (even an abandoned hedge) feeds b.latency.
func (g *Gateway) attempt(ctx context.Context, b *backend, path string, payload []byte, force bool, hdr http.Header) fwdResult {
	select {
	case b.inflight <- struct{}{}:
		defer func() { <-b.inflight }()
	default:
		g.met.inflightSpills.Add(1)
		return fwdResult{err: errInflightFull, backend: b}
	}
	if !force && !b.allow(time.Now()) {
		return fwdResult{err: errBreakerOpen, backend: b}
	}
	b.requests.Add(1)
	pctx, psp := obs.StartSpan(ctx, "proxy")
	psp.SetAttr("backend", b.url)
	defer psp.End()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(payload))
	if err != nil {
		return fwdResult{err: err, backend: b}
	}
	req.Header.Set("Content-Type", "application/json")
	copyAuth(req.Header, hdr)
	if tp := obs.Traceparent(pctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	t0 := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		psp.SetAttr("error", err.Error())
		if ctx.Err() != nil {
			// The gateway abandoned this attempt (a hedge rival won, or the
			// client went away) — that says nothing about the backend's
			// health, so it must not feed the breaker: penalizing won races
			// would open breakers on perfectly healthy shards and destroy
			// the cache-affinity routing. Slow-but-alive backends are the
			// probe loop's problem, not the breaker's.
			b.absolve()
			return fwdResult{err: err, backend: b}
		}
		b.failures.Add(1)
		b.report(false, time.Now(), g.cfg.BreakerThreshold, g.cfg.BreakerCooldown)
		return fwdResult{err: err, backend: b}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxRespBytes))
	if err != nil {
		psp.SetAttr("error", err.Error())
		if ctx.Err() != nil {
			b.absolve()
			return fwdResult{err: err, backend: b}
		}
		b.failures.Add(1)
		b.report(false, time.Now(), g.cfg.BreakerThreshold, g.cfg.BreakerCooldown)
		return fwdResult{err: err, backend: b}
	}
	b.latency.Observe(time.Since(t0))
	psp.SetAttrInt("status", int64(resp.StatusCode))
	out := fwdResult{status: resp.StatusCode, body: body, backend: b}
	ok := out.authoritative()
	if !ok {
		b.failures.Add(1)
	}
	b.report(ok, time.Now(), g.cfg.BreakerThreshold, g.cfg.BreakerCooldown)
	return out
}

// copyAuth forwards the tenant-identifying headers (and only those) from an
// incoming request to a backend request: admission and QoS accounting happen
// on the backend, so it must see the same API key the client presented.
func copyAuth(dst, src http.Header) {
	if src == nil {
		return
	}
	for _, h := range []string{"Authorization", "X-Api-Key"} {
		if v := src.Get(h); v != "" {
			dst.Set(h, v)
		}
	}
}

// candidateOrder is the ring walk for key, partitioned into available
// backends first (probe-healthy, breaker admitting) and the rest as a
// last-resort tail. Relative ring order is preserved within each part, so
// the home shard stays first whenever it is up.
func (g *Gateway) candidateOrder(key string) (order []*backend, forceFrom int) {
	idxs := g.ring.candidates(key)
	now := time.Now()
	var preferred, rest []*backend
	for _, i := range idxs {
		b := g.backends[i]
		if b.available(now) {
			preferred = append(preferred, b)
		} else {
			rest = append(rest, b)
		}
	}
	return append(preferred, rest...), len(preferred)
}

// forward runs the hedged failover loop: try candidates in ring order,
// advancing immediately on refusal and racing the next candidate after
// HedgeAfter of silence. The first authoritative answer wins and cancels
// the rest. Safe to re-execute on several shards because solve results are
// deterministic functions of the matrix (DESIGN.md §10).
func (g *Gateway) forward(ctx context.Context, key, path string, payload []byte, hdr http.Header) fwdResult {
	order, forceFrom := g.candidateOrder(key)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan fwdResult, len(order))
	next := 0
	launch := func() bool {
		if next >= len(order) {
			return false
		}
		b, force := order[next], next >= forceFrom
		next++
		go func() { results <- g.attempt(ctx, b, path, payload, force, hdr) }()
		return true
	}
	launch()
	pending := 1

	hedge := time.NewTimer(hedgeDelay(g.cfg.HedgeAfter))
	defer hedge.Stop()

	var lastRefusal fwdResult
	for pending > 0 {
		select {
		case r := <-results:
			pending--
			if r.authoritative() {
				return r
			}
			lastRefusal = r
			if launch() {
				pending++
				g.met.failovers.Add(1)
				hedge.Reset(hedgeDelay(g.cfg.HedgeAfter))
			}
		case <-hedge.C:
			if launch() {
				pending++
				g.met.hedges.Add(1)
			}
			hedge.Reset(hedgeDelay(g.cfg.HedgeAfter))
		case <-ctx.Done():
			return fwdResult{err: ctx.Err()}
		}
	}
	if lastRefusal.err == nil && lastRefusal.status != 0 {
		// Every candidate refused but at least one answered (429/5xx):
		// relay the most recent refusal so the client sees the fleet's
		// actual state (e.g. everyone draining → 503).
		return lastRefusal
	}
	if lastRefusal.err == nil {
		lastRefusal.err = errAllRefused
	}
	return lastRefusal
}

// hedgeDelay maps the HedgeAfter config (negative = off) onto a timer
// duration, using an effectively-infinite delay when hedging is disabled.
func hedgeDelay(d time.Duration) time.Duration {
	if d <= 0 {
		return 24 * time.Hour
	}
	return d
}

// ---------------------------------------------------------------------------
// Solve path.

// solveItem is one request's routing state, shared by the solve and batch
// paths.
type solveItem struct {
	req     *wire.SolveRequest
	m       *bitmat.Matrix
	fp      *bitmat.Fingerprint
	exact   bool // canonical form usable: route + lift through fp
	payload wire.SolveRequest
}

// prepare fingerprints one parsed request and decides its forwarding form:
// canonical matrix for exact fingerprints (so equivalent requests present
// byte-identical bodies to the shard), the original request otherwise. A
// degenerate canonical form (all-zero matrix → 0×0) is forwarded as-is:
// backends handle it, and its fingerprint still pins the shard.
func prepare(req *wire.SolveRequest, m *bitmat.Matrix) *solveItem {
	it := &solveItem{req: req, m: m, fp: bitmat.ComputeFingerprint(m)}
	it.exact = it.fp.Exact && it.fp.Canonical.Rows() > 0 && it.fp.Canonical.Cols() > 0
	if it.exact {
		it.payload = wire.SolveRequest{Matrix: it.fp.Canonical.String(), Options: req.Options}
	} else {
		it.payload = *req
	}
	return it
}

// liftJSON maps a canonical-space wire result onto the item's request
// matrix. hit marks the result as locally cache-served, zeroing the
// solver-stage stats like every other cache layer does.
func (it *solveItem) liftJSON(canon *wire.ResultJSON, hit bool) (*wire.ResultJSON, error) {
	rects := make([]solvecache.RectIndices, len(canon.Partition))
	for i, r := range canon.Partition {
		rects[i] = solvecache.RectIndices{Rows: r.Rows, Cols: r.Cols}
	}
	p, err := solvecache.LiftCanonical(it.fp, it.m, rects)
	if err != nil {
		return nil, err
	}
	out := *canon
	out.Fingerprint = it.fp.Hash
	out.Depth = p.Depth()
	out.Partition = make([]wire.RectJSON, 0, p.Depth())
	for _, r := range p.Rects {
		out.Partition = append(out.Partition, wire.RectJSON{Rows: r.RowIndices(), Cols: r.ColIndices()})
	}
	if hit {
		out.CacheHit = true
		out.SATCalls = 0
		out.Conflicts = 0
		out.PackNS = 0
		out.SATNS = 0
		out.Portfolio = nil
	}
	return &out, nil
}

// cacheableJSON mirrors solvecache's store policy: only proved-optimal,
// uninterrupted results are facts about the matrix that every later request
// may reuse.
func cacheableJSON(res *wire.ResultJSON) bool {
	return res.Optimal && !res.TimedOut && !res.Canceled
}

// solveOne routes one prepared item: local cache, then the hedged forward
// to its fingerprint shard, then lifting. It returns the HTTP status and
// the response value to encode (a *wire.ResultJSON or wire.ErrorResponse),
// or raw bytes to relay verbatim.
func (g *Gateway) solveOne(ctx context.Context, it *solveItem, hdr http.Header) (int, any, []byte) {
	if it.exact && g.cache != nil {
		if canon, ok := g.cache.get(it.fp.Hash); ok {
			if res, err := it.liftJSON(canon, true); err == nil {
				g.met.localHits.Add(1)
				return http.StatusOK, res, nil
			}
			g.cache.invalidate(it.fp.Hash)
		}
	}
	payload, err := json.Marshal(&it.payload)
	if err != nil {
		return http.StatusInternalServerError, wire.Errorf(wire.CodeInternal, "%v", err), nil
	}
	fr := g.forward(ctx, it.fp.Hash, "/v1/solve", payload, hdr)
	if fr.err != nil {
		if ctx.Err() != nil {
			return statusClientClosedRequest, wire.Errorf(wire.CodeClientGone, "%v", ctx.Err()), nil
		}
		g.met.failed.Add(1)
		return http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "all backends refused: %v", fr.err), nil
	}
	if fr.status != http.StatusOK {
		// Authoritative non-200 (or everyone-refused 429/503/5xx): relay the
		// backend's structured error body and status unchanged.
		if fr.status >= 500 || fr.status == http.StatusTooManyRequests {
			g.met.failed.Add(1)
		}
		return fr.status, nil, fr.body
	}
	if !it.exact {
		g.met.relayed.Add(1)
		return http.StatusOK, nil, g.stitchRelay(ctx, fr.body)
	}
	var canon wire.ResultJSON
	if err := json.Unmarshal(fr.body, &canon); err != nil {
		g.met.failed.Add(1)
		return http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "bad backend response: %v", err), nil
	}
	// Graft the backend's span subtree into this request's trace, then strip
	// it: the stitched trace lives on the gateway's /v1/debug/traces, and
	// neither clients nor cache entries should carry backend spans. Must
	// happen before liftJSON copies the result and before the cache put.
	g.stitch(ctx, &canon)
	if canon.CacheHit {
		g.met.remoteHits.Add(1)
	}
	res, err := it.liftJSON(&canon, false)
	if err != nil {
		g.met.failed.Add(1)
		return http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "%v", err), nil
	}
	if g.cache != nil && cacheableJSON(&canon) {
		g.cache.put(it.fp.Hash, &canon)
	}
	if cacheableJSON(&canon) && !canon.CacheHit {
		// A fresh proof (not a backend cache hit — those were replicated
		// when first solved): warm the ring successors asynchronously.
		g.replicate(it.fp.Hash, it.payload.Matrix, &canon, fr.backend)
	}
	return http.StatusOK, res, nil
}

// stitch grafts a backend response's span subtree into the current request's
// trace and strips it from the result. The backend root span's parent is the
// proxy span's ID (sent in the traceparent header), so the graft is a plain
// append — the tree links itself up at read time. Safe on untraced requests
// and trace-less responses.
func (g *Gateway) stitch(ctx context.Context, canon *wire.ResultJSON) {
	if canon.Trace == nil {
		return
	}
	if sp := obs.FromContext(ctx); sp != nil {
		spans, progress := obs.FromJSON(canon.Trace)
		sp.Merge(spans, progress)
	}
	canon.Trace = nil
}

// stitchRelay is stitch for the inexact-fingerprint relay path, where the
// response is normally passed through verbatim: when the backend attached a
// trace, the body is decoded, stitched, stripped and re-encoded so clients
// never see backend spans. Bodies without a trace relay untouched.
func (g *Gateway) stitchRelay(ctx context.Context, body []byte) []byte {
	if !bytes.Contains(body, []byte(`"trace"`)) {
		return body
	}
	var canon wire.ResultJSON
	if err := json.Unmarshal(body, &canon); err != nil || canon.Trace == nil {
		return body
	}
	g.stitch(ctx, &canon)
	out, err := json.Marshal(&canon)
	if err != nil {
		return body
	}
	return out
}

// statusClientClosedRequest mirrors ebmfd's use of nginx's non-standard 499
// for requests whose client went away mid-flight.
const statusClientClosedRequest = 499

// logged is the request-logging middleware (same shape as ebmfd's).
func (g *Gateway) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		g.cfg.Logger.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(t0).Round(time.Microsecond))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
