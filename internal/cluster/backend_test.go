package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThresholdAndRecovers(t *testing.T) {
	b := newBackend("http://x:1", 1)
	now := time.Now()
	const threshold = 3
	const cooldown = time.Second

	for i := 0; i < threshold-1; i++ {
		if !b.allow(now, cooldown) {
			t.Fatalf("refusal %d: breaker opened early", i)
		}
		b.report(false, now, threshold)
	}
	if !b.allow(now, cooldown) {
		t.Fatalf("breaker open before threshold")
	}
	b.report(false, now, threshold)

	// Open: rejects until the cooldown elapses.
	if b.allow(now, cooldown) {
		t.Fatalf("open breaker admitted a request")
	}
	if st := b.breakerStateNow(now, cooldown); st != brOpen {
		t.Fatalf("state = %v, want open", st)
	}

	// Cooldown over: exactly one half-open trial at a time.
	later := now.Add(2 * cooldown)
	if !b.allow(later, cooldown) {
		t.Fatalf("half-open trial rejected after cooldown")
	}
	if b.allow(later, cooldown) {
		t.Fatalf("second concurrent half-open trial admitted")
	}
	// Trial fails: straight back to open.
	b.report(false, later, threshold)
	if b.allow(later, cooldown) {
		t.Fatalf("breaker closed after a failed trial")
	}

	// Next trial succeeds: closed again, failure count reset.
	final := later.Add(2 * cooldown)
	if !b.allow(final, cooldown) {
		t.Fatalf("trial rejected after second cooldown")
	}
	b.report(true, final, threshold)
	if st := b.breakerStateNow(final, cooldown); st != brClosed {
		t.Fatalf("state = %v after successful trial, want closed", st)
	}
	for i := 0; i < threshold-1; i++ {
		if !b.allow(final, cooldown) {
			t.Fatalf("closed breaker rejected request %d (stale failure count?)", i)
		}
		b.report(false, final, threshold)
	}
	if !b.allow(final, cooldown) {
		t.Fatalf("failure count not reset by successful trial")
	}
}

func TestBreakerSuccessResetsConsecutiveFailures(t *testing.T) {
	b := newBackend("http://x:1", 1)
	now := time.Now()
	for i := 0; i < 10; i++ {
		b.report(false, now, 3)
		b.report(true, now, 3)
	}
	if st := b.breakerStateNow(now, time.Second); st != brClosed {
		t.Fatalf("interleaved failures opened the breaker: %v", st)
	}
}
