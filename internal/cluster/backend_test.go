package cluster

import (
	"testing"
	"time"

	"repro/internal/backoff"
)

func TestBreakerOpensAfterThresholdAndRecovers(t *testing.T) {
	b := newBackend("http://x:1", 1)
	now := time.Now()
	const threshold = 3
	const cooldown = time.Second

	for i := 0; i < threshold-1; i++ {
		if !b.allow(now) {
			t.Fatalf("refusal %d: breaker opened early", i)
		}
		b.report(false, now, threshold, cooldown)
	}
	if !b.allow(now) {
		t.Fatalf("breaker open before threshold")
	}
	b.report(false, now, threshold, cooldown)

	// Open: rejects until the (jittered) cooldown elapses. The first open
	// waits at most 1.25× the base cooldown.
	if b.allow(now) {
		t.Fatalf("open breaker admitted a request")
	}
	if st := b.breakerStateNow(now); st != brOpen {
		t.Fatalf("state = %v, want open", st)
	}

	// Cooldown over: exactly one half-open trial at a time.
	later := now.Add(2 * cooldown)
	if !b.allow(later) {
		t.Fatalf("half-open trial rejected after cooldown")
	}
	if b.allow(later) {
		t.Fatalf("second concurrent half-open trial admitted")
	}
	// Trial fails: straight back to open, with a doubled cooldown — the
	// second wait is in [1.5, 2.5) × base, so 1× base later must still
	// reject and 4× base later must admit.
	b.report(false, later, threshold, cooldown)
	if b.allow(later.Add(cooldown)) {
		t.Fatalf("re-opened breaker did not back off")
	}

	// Next trial succeeds: closed again, failure count and backoff reset.
	final := later.Add(4 * cooldown)
	if !b.allow(final) {
		t.Fatalf("trial rejected after second cooldown")
	}
	b.report(true, final, threshold, cooldown)
	if st := b.breakerStateNow(final); st != brClosed {
		t.Fatalf("state = %v after successful trial, want closed", st)
	}
	for i := 0; i < threshold-1; i++ {
		if !b.allow(final) {
			t.Fatalf("closed breaker rejected request %d (stale failure count?)", i)
		}
		b.report(false, final, threshold, cooldown)
	}
	if !b.allow(final) {
		t.Fatalf("failure count not reset by successful trial")
	}
	if n := b.reopens.Load(); n != 2 {
		t.Fatalf("reopens = %d, want 2", n)
	}
}

func TestBreakerSuccessResetsConsecutiveFailures(t *testing.T) {
	b := newBackend("http://x:1", 1)
	now := time.Now()
	for i := 0; i < 10; i++ {
		b.report(false, now, 3, time.Second)
		b.report(true, now, 3, time.Second)
	}
	if st := b.breakerStateNow(now); st != brClosed {
		t.Fatalf("interleaved failures opened the breaker: %v", st)
	}
}

// The breaker's cooldown grows exponentially across consecutive re-opens
// (capped), and a single success resets the schedule.
func TestBreakerCooldownBacksOff(t *testing.T) {
	b := newBackend("http://x:1", 1)
	const cooldown = time.Second
	now := time.Now()

	// Open the breaker (threshold 1), then fail every half-open trial.
	// After k opens the next retry is at jitter(cooldown × 2^min(k-1,6)) —
	// upper-bound 1.25 × 2^(k-1) × base, lower-bound 0.75 × 2^(k-1) × base.
	b.report(false, now, 1, cooldown)
	for k := 1; k <= 4; k++ {
		lower := now.Add(time.Duration(float64(cooldown) * 0.74 * float64(int(1)<<(k-1))))
		upper := now.Add(time.Duration(float64(cooldown) * 1.26 * float64(int(1)<<(k-1))))
		if b.allow(lower) {
			t.Fatalf("open %d: admitted before the backed-off cooldown", k)
		}
		if !b.allow(upper) {
			t.Fatalf("open %d: rejected after the backed-off cooldown", k)
		}
		// Fail the trial from the time it was admitted: the next schedule
		// is measured from there.
		now = upper
		b.report(false, now, 1, cooldown)
	}

	// A success resets the backoff to the base cooldown.
	retry := now.Add(time.Duration(float64(cooldown) * 1.26 * 16))
	if !b.allow(retry) {
		t.Fatalf("trial rejected long after the capped cooldown")
	}
	b.report(true, retry, 1, cooldown)
	b.report(false, retry, 1, cooldown) // re-open: schedule starts over
	if b.allow(retry.Add(cooldown / 2)) {
		t.Fatalf("breaker admitted inside the base cooldown after reset")
	}
	if !b.allow(retry.Add(2 * cooldown)) {
		t.Fatalf("breaker did not reset its backoff after a success")
	}
}

// probeDelay doubles per failure, jittered, capped near probeMaxBackoff.
func TestProbeDelaySchedule(t *testing.T) {
	base := 2 * time.Second
	for fails := 0; fails < 12; fails++ {
		d := probeDelay(base, fails)
		want := base << min(fails, backoff.Shift)
		if want > probeMaxBackoff {
			want = probeMaxBackoff
		}
		lo := want - want/4
		hi := want + want/4
		if d < lo || d > hi {
			t.Fatalf("fails=%d: delay %v outside [%v, %v]", fails, d, lo, hi)
		}
	}
	// A base longer than the cap is respected (never probe faster than
	// configured).
	long := 2 * probeMaxBackoff
	if d := probeDelay(long, 3); d < long-long/4 {
		t.Fatalf("long base shortened: %v < %v", d, long-long/4)
	}
}
