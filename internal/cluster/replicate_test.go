package cluster

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/wire"
)

// waitForFills blocks until the gateway's background fills finish AND n of
// them were delivered (stored or duplicate), or the deadline passes —
// drainFills alone can race the goroutine spawn.
func waitForFills(t *testing.T, gw *Gateway, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		gw.drainFills()
		m := &gw.met
		if m.fillsStored.Load()+m.fillsDuplicate.Load()+m.fillsFailed.Load() >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("fills not delivered: %+v", gw.MetricsSnapshot().Replication)
}

// A fresh solve through the gateway must warm the ring successor: with two
// backends, both answer the canonical request from cache afterwards, so a
// failover of the home shard costs zero re-solves.
func TestReplicationWarmsSuccessor(t *testing.T) {
	tc := newTestCluster(t, 2, Config{ReplicateFills: 1})

	resp, body := postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if !res.Optimal || res.CacheHit {
		t.Fatalf("cold solve: %+v", res)
	}
	waitForFills(t, tc.gw, 1)

	rep := tc.gw.MetricsSnapshot().Replication
	if rep.Sent != 1 || rep.Stored != 1 || rep.Failed != 0 {
		t.Fatalf("replication metrics: %+v", rep)
	}
	// Every backend — not just the serving shard — now answers the same
	// matrix from its cache, without any new pipeline run.
	before := tc.fleetSolves()
	for i, bts := range tc.backends {
		resp, body := postJSON(t, bts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("backend %d: %d %s", i, resp.StatusCode, body)
		}
		if r := decodeResult(t, body); !r.CacheHit || !r.Optimal || r.Depth != res.Depth {
			t.Fatalf("backend %d cold after replication: %+v", i, r)
		}
	}
	if after := tc.fleetSolves(); after != before {
		t.Fatalf("replicated fleet re-solved: %d -> %d pipeline runs", before, after)
	}
	// Exactly one backend seeded (the successor); the server fill metrics
	// agree with the gateway's.
	var seeds int64
	for _, s := range tc.servers {
		seeds += s.Cache().Stats().Seeds
	}
	if seeds != 1 {
		t.Fatalf("fleet seeds = %d, want 1", seeds)
	}
}

// ReplicateFills < 0 disables the path entirely.
func TestReplicationDisabled(t *testing.T) {
	tc := newTestCluster(t, 2, Config{ReplicateFills: -1})
	resp, body := postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	tc.gw.drainFills()
	if rep := tc.gw.MetricsSnapshot().Replication; rep.Sent != 0 {
		t.Fatalf("disabled replication sent fills: %+v", rep)
	}
}

// A backend cache hit does not re-replicate: successors were warmed when
// the result was first proved.
func TestReplicationSkipsRemoteCacheHits(t *testing.T) {
	tc := newTestCluster(t, 2, Config{ReplicateFills: 1, LocalCacheSize: -1})

	if resp, body := postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b}); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	waitForFills(t, tc.gw, 1)
	// Second identical solve: the home shard answers cache_hit=true; no new
	// fill may be sent.
	if resp, body := postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b}); resp.StatusCode != http.StatusOK {
		t.Fatalf("resolve: %d %s", resp.StatusCode, body)
	}
	tc.gw.drainFills()
	if rep := tc.gw.MetricsSnapshot().Replication; rep.Sent != 1 {
		t.Fatalf("cache hit triggered replication: %+v", rep)
	}
}

// A down replication target only shows up in the failure counter — the
// solve path, breakers, and the other backends are untouched.
func TestReplicationTargetDown(t *testing.T) {
	tc := newTestCluster(t, 2, Config{ReplicateFills: 1, FillTimeout: 500 * time.Millisecond})

	// Find which backend is NOT the home shard for fig1b and kill it.
	req := wire.SolveRequest{Matrix: fig1b}
	m, err := req.ParseMatrix()
	if err != nil {
		t.Fatal(err)
	}
	it := prepare(&req, m)
	home := tc.gw.ring.candidates(it.fp.Hash)[0]
	succ := 1 - home
	tc.backends[succ].Close()

	resp, body := postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve with dead successor: %d %s", resp.StatusCode, body)
	}
	if r := decodeResult(t, body); !r.Optimal {
		t.Fatalf("result: %+v", r)
	}
	waitForFills(t, tc.gw, 1)
	rep := tc.gw.MetricsSnapshot().Replication
	if rep.Sent != 1 || rep.Failed != 1 || rep.Stored != 0 {
		t.Fatalf("replication metrics with dead target: %+v", rep)
	}
	// The failed fill must not have opened the serving breaker of either
	// backend (fills bypass breaker accounting entirely).
	for _, b := range tc.gw.backends {
		if st := b.breakerStateNow(time.Now()); st != brClosed {
			t.Fatalf("backend %s breaker %v after failed fill, want closed", b.url, st)
		}
	}
}
