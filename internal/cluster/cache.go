package cluster

import (
	"container/list"
	"sync"

	"repro/internal/wire"
)

// localCache is the gateway's in-process LRU of proved-optimal results,
// keyed by canonical fingerprint and stored in canonical index space (the
// partition indexes fp.Canonical). It sits in front of the network: a hit
// skips the backend round trip entirely and is lifted onto the request
// matrix exactly like a solvecache hit. Entries are immutable once stored —
// hits copy before customizing.
type localCache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *localEntry
	byKey    map[string]*list.Element

	hits, misses, stores, evictions, liftFailures int64
}

type localEntry struct {
	key string
	res *wire.ResultJSON // canonical-space; never mutated after store
}

func newLocalCache(capacity int) *localCache {
	return &localCache{
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// get returns the canonical-space result for key, refreshing its LRU
// position. The returned value is shared: callers must copy before mutating.
func (c *localCache) get(key string) (*wire.ResultJSON, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*localEntry).res, true
}

// put stores a canonical-space result, evicting from the LRU tail.
func (c *localCache) put(key string, res *wire.ResultJSON) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*localEntry).res = res
		return
	}
	c.byKey[key] = c.lru.PushFront(&localEntry{key: key, res: res})
	c.stores++
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*localEntry).key)
		c.evictions++
	}
}

// invalidate drops an entry that failed to lift (collision insurance, same
// policy as solvecache: degrade to a miss, never to a wrong answer).
func (c *localCache) invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.liftFailures++
	if el, ok := c.byKey[key]; ok {
		c.lru.Remove(el)
		delete(c.byKey, key)
	}
}

// LocalCacheStats is the /v1/metrics view of the gateway-local result cache.
type LocalCacheStats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Stores       int64 `json:"stores"`
	Evictions    int64 `json:"evictions"`
	LiftFailures int64 `json:"lift_failures"`
	Entries      int   `json:"entries"`
	Capacity     int   `json:"capacity"`
}

func (c *localCache) stats() LocalCacheStats {
	if c == nil {
		return LocalCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return LocalCacheStats{
		Hits:         c.hits,
		Misses:       c.misses,
		Stores:       c.stores,
		Evictions:    c.evictions,
		LiftFailures: c.liftFailures,
		Entries:      c.lru.Len(),
		Capacity:     c.capacity,
	}
}
