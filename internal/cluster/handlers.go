package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/bitmat"
	"repro/internal/obs"
	"repro/internal/wire"
)

// startTrace opens a root span for one gateway request, honoring an incoming
// traceparent header (a client or an upstream gateway asking for the spans
// back).
func (g *Gateway) startTrace(r *http.Request, name string) (context.Context, *obs.Span) {
	var remote *obs.Remote
	if rm, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		remote = &rm
	}
	return g.cfg.Tracer.StartTrace(r.Context(), name, remote)
}

// handleSolve answers POST /v1/solve: decode, fingerprint, route, lift.
func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	g.met.solveRequests.Add(1)
	if g.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, wire.Errorf(wire.CodeDraining, "gateway draining"))
		return
	}
	var req wire.SolveRequest
	if err := g.decode(w, r, &req); err != nil {
		g.badRequest(w, err)
		return
	}
	if err := wire.CheckAPI(req.API); err != nil {
		g.met.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, wire.Errorf(wire.CodeUnsupportedAPI, "%v", err))
		return
	}
	m, gerr := g.requestMatrix(&req)
	if gerr != nil {
		g.met.badRequests.Add(1)
		writeJSON(w, gerr.status, wire.Errorf(gerr.code, "%s", gerr.msg))
		return
	}
	ctx, root := g.startTrace(r, "gw.solve")
	t0 := time.Now()
	status, v, raw := g.solveOne(ctx, prepare(&req, m), r.Header)
	if status == http.StatusOK {
		g.met.solveHist.Observe(time.Since(t0))
	} else {
		root.SetAttrInt("status", int64(status))
	}
	if raw != nil {
		root.Finish()
		relayJSON(w, status, raw)
		return
	}
	// When this gateway is itself being traced by an upstream tier (nested
	// gateways), hand the stitched tree back the same way a backend does.
	if td := root.Finish(); td != nil && root.IsRemote() {
		if res, ok := v.(*wire.ResultJSON); ok {
			res.Trace = td.JSON()
		}
	}
	writeJSON(w, status, v)
}

// handleTraces answers GET /v1/debug/traces with the gateway tracer's recent
// and slowest stitched traces.
func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.cfg.Tracer.Traces())
}

// handleBatch answers POST /v1/batch: fingerprint every item, serve local
// hits, group the rest by home shard, forward one sub-batch per shard
// concurrently (each with the full failover machinery), and merge the
// responses in request order.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	g.met.batchRequests.Add(1)
	if g.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, wire.Errorf(wire.CodeDraining, "gateway draining"))
		return
	}
	var req wire.BatchRequest
	if err := g.decode(w, r, &req); err != nil {
		g.badRequest(w, err)
		return
	}
	if err := wire.CheckAPI(req.API); err != nil {
		g.met.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, wire.Errorf(wire.CodeUnsupportedAPI, "%v", err))
		return
	}
	if len(req.Requests) == 0 {
		g.badRequest(w, errors.New("empty batch"))
		return
	}
	if len(req.Requests) > g.cfg.MaxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			wire.Errorf(wire.CodeBudgetExceeded, "batch exceeds limit"))
		return
	}

	ctx, root := g.startTrace(r, "gw.batch")
	defer root.Finish()

	resp := wire.BatchResponse{API: wire.V1, Results: make([]wire.BatchItem, len(req.Requests))}
	// Per-shard sub-batches: position i of shard s's sub-batch is the
	// request at original index groups[s].idx[i].
	type group struct {
		items []*solveItem
		idx   []int
	}
	groups := make(map[int]*group)
	for i := range req.Requests {
		item := &req.Requests[i]
		m, gerr := g.requestMatrix(item)
		if gerr != nil {
			resp.Results[i] = wire.BatchItem{Error: gerr.msg}
			continue
		}
		it := prepare(item, m)
		if it.exact && g.cache != nil {
			if canon, ok := g.cache.get(it.fp.Hash); ok {
				if res, err := it.liftJSON(canon, true); err == nil {
					g.met.localHits.Add(1)
					resp.Results[i] = wire.BatchItem{Result: res}
					continue
				}
				g.cache.invalidate(it.fp.Hash)
			}
		}
		home := g.ring.candidates(it.fp.Hash)[0]
		gr := groups[home]
		if gr == nil {
			gr = &group{}
			groups[home] = gr
		}
		gr.items = append(gr.items, it)
		gr.idx = append(gr.idx, i)
	}

	hdr := r.Header
	var wg sync.WaitGroup
	for _, gr := range groups {
		wg.Add(1)
		go func(gr *group) {
			defer wg.Done()
			sub := wire.BatchRequest{Requests: make([]wire.SolveRequest, len(gr.items))}
			for i, it := range gr.items {
				sub.Requests[i] = it.payload
			}
			payload, err := json.Marshal(&sub)
			if err != nil {
				g.failGroup(resp.Results, gr.idx, err)
				return
			}
			// Route the sub-batch by its first item's fingerprint: the group
			// was formed by that key's home shard, and failover order follows
			// the same ring walk.
			fr := g.forward(ctx, gr.items[0].fp.Hash, "/v1/batch", payload, hdr)
			if fr.err != nil {
				g.met.failed.Add(1)
				g.failGroup(resp.Results, gr.idx, fmt.Errorf("all backends refused: %w", fr.err))
				return
			}
			if fr.status != http.StatusOK {
				g.met.failed.Add(1)
				g.failGroup(resp.Results, gr.idx, fmt.Errorf("backend %s: %s", fr.backend.url, errorBody(fr.body)))
				return
			}
			var subResp wire.BatchResponse
			if err := json.Unmarshal(fr.body, &subResp); err != nil || len(subResp.Results) != len(gr.items) {
				g.met.failed.Add(1)
				g.failGroup(resp.Results, gr.idx, fmt.Errorf("bad backend batch response from %s", fr.backend.url))
				return
			}
			for i, item := range subResp.Results {
				it, orig := gr.items[i], gr.idx[i]
				if item.Result == nil || !it.exact {
					if item.Result != nil {
						g.met.relayed.Add(1)
					}
					resp.Results[orig] = item
					continue
				}
				if item.Result.CacheHit {
					g.met.remoteHits.Add(1)
				}
				g.stitch(ctx, item.Result)
				res, err := it.liftJSON(item.Result, false)
				if err != nil {
					g.met.failed.Add(1)
					resp.Results[orig] = wire.BatchItem{Error: err.Error()}
					continue
				}
				if g.cache != nil && cacheableJSON(item.Result) {
					g.cache.put(it.fp.Hash, item.Result)
				}
				if cacheableJSON(item.Result) && !item.Result.CacheHit {
					g.replicate(it.fp.Hash, it.payload.Matrix, item.Result, fr.backend)
				}
				resp.Results[orig] = wire.BatchItem{Result: res}
			}
		}(gr)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, resp)
}

// failGroup marks every item of a sub-batch with one routing error.
func (g *Gateway) failGroup(results []wire.BatchItem, idx []int, err error) {
	for _, i := range idx {
		results[i] = wire.BatchItem{Error: err.Error()}
	}
}

// errorBody extracts the message from a backend's structured error payload,
// falling back to the raw bytes.
func errorBody(body []byte) string {
	var e wire.ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(body)
}

// handleHealthz answers GET /v1/healthz: 200 while serving with at least
// one probe-healthy backend, 503 when draining or the whole fleet is down.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	for _, b := range g.backends {
		if b.healthy.Load() {
			healthy++
		}
	}
	status, state := http.StatusOK, "ok"
	switch {
	case g.draining.Load():
		status, state = http.StatusServiceUnavailable, "draining"
	case healthy == 0:
		status, state = http.StatusServiceUnavailable, "no_healthy_backends"
	}
	writeJSON(w, status, map[string]any{
		"status":    state,
		"backends":  len(g.backends),
		"healthy":   healthy,
		"uptime_ms": timeSince(g.started),
	})
}

// handleMetrics answers GET /v1/metrics with the aggregated snapshot.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.MetricsSnapshot())
}

// decode reads one JSON body within the configured size cap, rejecting
// unknown fields exactly like ebmfd (a typo'd option must be a 400, not a
// silently ignored knob).
func (g *Gateway) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// gwError is a gateway-side coded failure, mirroring ebmfd's
// classification so clients see the same codes no matter which tier
// rejected them.
type gwError struct {
	status int
	code   string
	msg    string
}

// requestMatrix parses and size-checks one request's matrix. Dimensional
// invalidity (ragged rows, zero dimensions) surfaces as CodeBadMatrix, an
// oversize one as CodeBudgetExceeded — both 400, matching ebmfd.
func (g *Gateway) requestMatrix(req *wire.SolveRequest) (*bitmat.Matrix, *gwError) {
	m, err := req.ParseMatrix()
	if err != nil {
		return nil, &gwError{http.StatusBadRequest, wire.CodeBadMatrix, err.Error()}
	}
	if m.Rows()*m.Cols() > g.cfg.MaxMatrixEntries {
		return nil, &gwError{http.StatusBadRequest, wire.CodeBudgetExceeded, "matrix exceeds size limit"}
	}
	return m, nil
}

func (g *Gateway) badRequest(w http.ResponseWriter, err error) {
	g.met.badRequests.Add(1)
	writeJSON(w, http.StatusBadRequest, wire.Errorf(wire.CodeBadRequest, "%v", err))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// relayJSON writes a backend's response bytes through unchanged. Relayed
// 429s re-carry the Retry-After hint (response headers are not captured by
// the forwarding machinery, only bodies).
func relayJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	w.Write(body)
}
