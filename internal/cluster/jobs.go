package cluster

import (
	"bufio"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// The async-job proxy. Jobs differ from solves in two ways that shape this
// code:
//
//   - A submit is NOT idempotent: re-executing it on two backends would run
//     (and bill) the solve twice and leave an orphan job behind. So the
//     submit walks the candidate ring SEQUENTIALLY — failover happens only
//     after a backend refused — and never hedges.
//   - A job has a home: every later poll, cancel and event stream must
//     reach the backend that accepted the submit. The jobTable remembers
//     that route under a gateway-minted ID (backend IDs are only unique
//     per backend), together with the solveItem needed to lift canonical
//     results back onto the client's matrix.
//
// The event stream is a byte-level SSE passthrough: status and progress
// frames relay verbatim (nothing in them is backend-specific), while
// terminal "done" frames are decoded, their job ID rewritten and their
// result lifted from canonical space, then re-encoded. Closing the client
// connection closes the proxied backend request, so cancel_on_disconnect
// semantics propagate through the gateway unchanged.

// jobEntry is one proxied job's route: where it lives, how to lift its
// result, and everything needed to re-home it — the canonical submit
// payload is pinned so a dead backend's job can be resubmitted to the next
// ring candidate under the same gateway ID.
type jobEntry struct {
	mu        sync.Mutex
	backend   *backend
	backendID string
	it        *solveItem // nil lift context means relay results verbatim
	payload   []byte     // canonical submit body (re-homing resubmits it)
	fpHash    string     // ring key, for the re-home candidate order
	terminal  bool       // a terminal snapshot was observed through this route
	rehomed   bool       // the route no longer points at the original home
}

// route reads the entry's current backend and backend-side job ID.
func (e *jobEntry) route() (*backend, string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.backend, e.backendID
}

// markTerminal records that a terminal snapshot passed through this route:
// the job is finished, so this entry is first in line for eviction.
func (e *jobEntry) markTerminal() {
	e.mu.Lock()
	e.terminal = true
	e.mu.Unlock()
}

func (e *jobEntry) isTerminal() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.terminal
}

// newGatewayJobID mints an unguessable gateway job ID (64 bits of
// crypto/rand), matching the backend registry's ID policy.
func newGatewayJobID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cluster: crypto/rand unavailable: %v", err))
	}
	return "gw-" + hex.EncodeToString(b[:])
}

// jobTable maps gateway job IDs to their routes, bounded by evicting
// terminal entries first and only then the oldest live ones — a submit
// burst must not drop the route of a still-running streamed job (an evicted
// job is still pollable directly on its backend; the gateway just no longer
// knows the way).
type jobTable struct {
	mu    sync.Mutex
	jobs  map[string]*jobEntry
	order []string
	max   int
}

func newJobTable(max int) *jobTable {
	return &jobTable{jobs: make(map[string]*jobEntry), max: max}
}

func (t *jobTable) add(e *jobEntry) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var id string
	for {
		id = newGatewayJobID()
		if _, taken := t.jobs[id]; !taken {
			break
		}
	}
	t.jobs[id] = e
	t.order = append(t.order, id)
	t.evictLocked()
	return id
}

// evictLocked enforces max: finished jobs age out first (oldest terminal
// first), and only when every remaining entry is live does it fall back to
// strict FIFO.
func (t *jobTable) evictLocked() {
	over := len(t.order) - t.max
	if over <= 0 {
		return
	}
	kept := t.order[:0]
	for _, id := range t.order {
		if over > 0 && t.jobs[id].isTerminal() {
			delete(t.jobs, id)
			over--
			continue
		}
		kept = append(kept, id)
	}
	t.order = kept
	for over > 0 && len(t.order) > 0 {
		delete(t.jobs, t.order[0])
		t.order = t.order[1:]
		over--
	}
}

func (t *jobTable) get(id string) *jobEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[id]
}

func (t *jobTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}

// rewriteJob maps a backend job snapshot into gateway space: the gateway ID
// replaces the backend's, the rehomed flag surfaces, and a canonical-space
// result is lifted onto the client's original matrix. Returns an error only
// when lifting fails — a backend or routing bug, never a client mistake.
func (e *jobEntry) rewriteJob(gwID string, j *wire.JobJSON) error {
	j.ID = gwID
	e.mu.Lock()
	rehomed, it := e.rehomed, e.it
	e.mu.Unlock()
	if rehomed {
		j.Rehomed = true
	}
	if wire.JobTerminal(j.State) {
		e.markTerminal()
	}
	if j.Result == nil || it == nil || !it.exact {
		return nil
	}
	res, err := it.liftJSON(j.Result, false)
	if err != nil {
		return err
	}
	j.Result = res
	return nil
}

// rehome resubmits a job whose home backend stopped answering: the pinned
// canonical payload is offered to the remaining ring candidates in order,
// and the first 202 becomes the entry's new route — same gateway ID,
// Rehomed surfaced on every later snapshot. Sound because a solve result is
// a deterministic property of the matrix: the new backend re-derives (or
// cache-hits) the same answer the dead one would have produced. Progress is
// reset — the client may see "queued" again — which is the trade against a
// permanent 502. Reports whether a new home accepted.
func (g *Gateway) rehome(ctx context.Context, gwID string, e *jobEntry, hdr http.Header) bool {
	e.mu.Lock()
	payload, dead, fpHash, terminal := e.payload, e.backend, e.fpHash, e.terminal
	e.mu.Unlock()
	if len(payload) == 0 || terminal {
		return false
	}
	order, forceFrom := g.candidateOrder(fpHash)
	for i, b := range order {
		if b == dead {
			continue
		}
		fr := g.attempt(ctx, b, "/v1/jobs", payload, i >= forceFrom, hdr)
		if ctx.Err() != nil {
			return false
		}
		if !fr.authoritative() || fr.status != http.StatusAccepted {
			continue
		}
		var j wire.JobJSON
		if err := json.Unmarshal(fr.body, &j); err != nil {
			continue
		}
		e.mu.Lock()
		e.backend, e.backendID, e.rehomed = b, j.ID, true
		e.mu.Unlock()
		g.met.jobsRehomed.Add(1)
		g.cfg.Logger.Printf("job %s: re-homed %s -> %s", gwID, dead.url, b.url)
		return true
	}
	return false
}

// handleJobSubmit proxies POST /v1/jobs: validate locally (cheap, and the
// fingerprint is needed for routing anyway), then offer the job to the
// ring's candidates one at a time until a backend accepts it.
func (g *Gateway) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	g.met.jobSubmits.Add(1)
	if g.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, wire.Errorf(wire.CodeDraining, "gateway draining"))
		return
	}
	var req wire.JobRequest
	if err := g.decode(w, r, &req); err != nil {
		g.badRequest(w, err)
		return
	}
	if err := wire.CheckAPI(req.API); err != nil {
		g.met.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, wire.Errorf(wire.CodeUnsupportedAPI, "%v", err))
		return
	}
	sreq := req.SolveRequest()
	m, gerr := g.requestMatrix(sreq)
	if gerr != nil {
		g.met.badRequests.Add(1)
		writeJSON(w, gerr.status, wire.Errorf(gerr.code, "%s", gerr.msg))
		return
	}
	it := prepare(sreq, m)
	// Forward the canonical matrix exactly like the solve path, so the
	// backend's cache and singleflight see the same key space either way.
	fwd := req
	fwd.Matrix, fwd.Rows = it.payload.Matrix, it.payload.Rows
	payload, err := json.Marshal(&fwd)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, wire.Errorf(wire.CodeInternal, "%v", err))
		return
	}

	ctx := r.Context()
	order, forceFrom := g.candidateOrder(it.fp.Hash)
	var last fwdResult
	for i, b := range order {
		fr := g.attempt(ctx, b, "/v1/jobs", payload, i >= forceFrom, r.Header)
		if ctx.Err() != nil {
			writeJSON(w, statusClientClosedRequest, wire.Errorf(wire.CodeClientGone, "%v", ctx.Err()))
			return
		}
		last = fr
		if !fr.authoritative() {
			if fr.err == nil {
				g.met.failovers.Add(1)
			}
			continue
		}
		if fr.status != http.StatusAccepted {
			// The backend made a decision a different shard would repeat
			// (bad request, quota, auth): relay it.
			relayJSON(w, fr.status, fr.body)
			return
		}
		var j wire.JobJSON
		if err := json.Unmarshal(fr.body, &j); err != nil {
			g.met.failed.Add(1)
			writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "bad backend job response: %v", err))
			return
		}
		e := &jobEntry{backend: b, backendID: j.ID, it: it, payload: payload, fpHash: it.fp.Hash}
		gwID := g.jobs.add(e)
		if err := e.rewriteJob(gwID, &j); err != nil {
			g.met.failed.Add(1)
			writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "%v", err))
			return
		}
		g.met.jobsAccepted.Add(1)
		writeJSON(w, http.StatusAccepted, &j)
		return
	}
	// No candidate accepted. Relay the most recent refusal (a 429/503 tells
	// the client the fleet's actual state) or fail coded.
	if last.err == nil && last.status != 0 {
		g.met.failed.Add(1)
		relayJSON(w, last.status, last.body)
		return
	}
	g.met.failed.Add(1)
	writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "all backends refused the job: %v", last.err))
}

// jobRoute resolves {id} to its route, answering the 404 itself. A route the
// gateway evicted or never knew is indistinguishable from a job that never
// existed — same contract as the backend's per-tenant visibility.
func (g *Gateway) jobRoute(w http.ResponseWriter, r *http.Request) (string, *jobEntry, bool) {
	id := r.PathValue("id")
	e := g.jobs.get(id)
	if e == nil {
		writeJSON(w, http.StatusNotFound, wire.Errorf(wire.CodeNotFound, "no such job"))
		return "", nil, false
	}
	return id, e, true
}

// proxyJobCall forwards one GET/DELETE to a job's home backend and rewrites
// the snapshot on success. A transport error (home died) triggers one
// re-home attempt: the pinned submit resubmits to the next ring candidate
// and the call retries against the new route, so a single poll of a
// dead-backend job answers 200 with a live (re-homed) snapshot instead
// of 502.
func (g *Gateway) proxyJobCall(w http.ResponseWriter, r *http.Request, method string) {
	gwID, e, ok := g.jobRoute(w, r)
	if !ok {
		return
	}
	var resp *http.Response
	for try := 0; ; try++ {
		b, backendID := e.route()
		req, err := http.NewRequestWithContext(r.Context(), method,
			b.url+"/v1/jobs/"+backendID, nil)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, wire.Errorf(wire.CodeInternal, "%v", err))
			return
		}
		copyAuth(req.Header, r.Header)
		resp, err = g.client.Do(req)
		if err == nil {
			break
		}
		b.report(false, time.Now(), g.cfg.BreakerThreshold, g.cfg.BreakerCooldown)
		if try == 0 && g.rehome(r.Context(), gwID, e, r.Header) {
			continue
		}
		g.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "job backend unreachable: %v", err))
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxRespBytes))
	if err != nil {
		g.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "job backend read: %v", err))
		return
	}
	if resp.StatusCode != http.StatusOK {
		relayJSON(w, resp.StatusCode, body)
		return
	}
	var j wire.JobJSON
	if err := json.Unmarshal(body, &j); err != nil {
		g.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "bad backend job response: %v", err))
		return
	}
	if err := e.rewriteJob(gwID, &j); err != nil {
		g.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, &j)
}

// handleJobGet proxies GET /v1/jobs/{id} to the job's home backend.
func (g *Gateway) handleJobGet(w http.ResponseWriter, r *http.Request) {
	g.proxyJobCall(w, r, http.MethodGet)
}

// handleJobCancel proxies DELETE /v1/jobs/{id} to the job's home backend.
func (g *Gateway) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	g.proxyJobCall(w, r, http.MethodDelete)
}

// handleJobEvents proxies the SSE stream from the job's home backend,
// frame by frame: live passthrough for status/progress, decode-and-lift for
// the terminal frame. The client's Last-Event-ID forwards so resumption
// works through the proxy.
func (g *Gateway) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	gwID, e, ok := g.jobRoute(w, r)
	if !ok {
		return
	}
	var resp *http.Response
	for try := 0; ; try++ {
		b, backendID := e.route()
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			b.url+"/v1/jobs/"+backendID+"/events", nil)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, wire.Errorf(wire.CodeInternal, "%v", err))
			return
		}
		copyAuth(req.Header, r.Header)
		if lid := r.Header.Get("Last-Event-ID"); lid != "" {
			req.Header.Set("Last-Event-ID", lid)
		}
		resp, err = g.client.Do(req)
		if err == nil {
			break
		}
		b.report(false, time.Now(), g.cfg.BreakerThreshold, g.cfg.BreakerCooldown)
		if try == 0 && g.rehome(r.Context(), gwID, e, r.Header) {
			continue
		}
		g.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "job backend unreachable: %v", err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxRespBytes))
		relayJSON(w, resp.StatusCode, body)
		return
	}
	g.met.jobStreams.Add(1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	// Relay frame by frame. A frame is a run of non-empty lines closed by a
	// blank line; only "data:" lines of terminal frames need rewriting.
	br := bufio.NewReader(resp.Body)
	var frame []string
	flushFrame := func() bool {
		if len(frame) == 0 {
			return true
		}
		terminal := false
		for i, line := range frame {
			data, ok := strings.CutPrefix(line, "data: ")
			if !ok {
				continue
			}
			var ev wire.JobEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil || ev.Job == nil {
				continue // status/progress frames pass through untouched
			}
			terminal = true
			if err := e.rewriteJob(gwID, ev.Job); err != nil {
				// Lifting failed mid-stream: surface it as the stream's
				// terminal event rather than a silent truncation.
				ev.Job.State = wire.JobFailed
				ev.Job.Result = nil
				ev.Job.Error = err.Error()
			}
			out, err := json.Marshal(&ev)
			if err != nil {
				return false
			}
			frame[i] = "data: " + string(out)
		}
		for _, line := range frame {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return false
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return false
		}
		rc.Flush()
		frame = frame[:0]
		return !terminal
	}
	for {
		line, err := br.ReadString('\n')
		line = strings.TrimRight(line, "\r\n")
		if line != "" {
			frame = append(frame, line)
		} else if !flushFrame() {
			return
		}
		if err != nil {
			flushFrame() // backend closed mid-frame: relay what arrived
			return
		}
	}
}
