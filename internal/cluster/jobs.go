package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/wire"
)

// The async-job proxy. Jobs differ from solves in two ways that shape this
// code:
//
//   - A submit is NOT idempotent: re-executing it on two backends would run
//     (and bill) the solve twice and leave an orphan job behind. So the
//     submit walks the candidate ring SEQUENTIALLY — failover happens only
//     after a backend refused — and never hedges.
//   - A job has a home: every later poll, cancel and event stream must
//     reach the backend that accepted the submit. The jobTable remembers
//     that route under a gateway-minted ID (backend IDs are only unique
//     per backend), together with the solveItem needed to lift canonical
//     results back onto the client's matrix.
//
// The event stream is a byte-level SSE passthrough: status and progress
// frames relay verbatim (nothing in them is backend-specific), while
// terminal "done" frames are decoded, their job ID rewritten and their
// result lifted from canonical space, then re-encoded. Closing the client
// connection closes the proxied backend request, so cancel_on_disconnect
// semantics propagate through the gateway unchanged.

// jobEntry is one proxied job's route: where it lives and how to lift its
// result.
type jobEntry struct {
	backend   *backend
	backendID string
	it        *solveItem // nil lift context means relay results verbatim
}

// jobTable maps gateway job IDs to their routes, bounded by evicting the
// oldest entries (an evicted job is still pollable directly on its backend;
// the gateway just no longer knows the way).
type jobTable struct {
	mu    sync.Mutex
	seq   uint64
	jobs  map[string]*jobEntry
	order []string
	max   int
}

func newJobTable(max int) *jobTable {
	return &jobTable{jobs: make(map[string]*jobEntry), max: max}
}

func (t *jobTable) add(e *jobEntry) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := fmt.Sprintf("gw-%08x", t.seq)
	t.jobs[id] = e
	t.order = append(t.order, id)
	for len(t.order) > t.max {
		delete(t.jobs, t.order[0])
		t.order = t.order[1:]
	}
	return id
}

func (t *jobTable) get(id string) *jobEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[id]
}

func (t *jobTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}

// rewriteJob maps a backend job snapshot into gateway space: the gateway ID
// replaces the backend's, and a canonical-space result is lifted onto the
// client's original matrix. Returns an error only when lifting fails — a
// backend or routing bug, never a client mistake.
func (e *jobEntry) rewriteJob(gwID string, j *wire.JobJSON) error {
	j.ID = gwID
	if j.Result == nil || e.it == nil || !e.it.exact {
		return nil
	}
	res, err := e.it.liftJSON(j.Result, false)
	if err != nil {
		return err
	}
	j.Result = res
	return nil
}

// handleJobSubmit proxies POST /v1/jobs: validate locally (cheap, and the
// fingerprint is needed for routing anyway), then offer the job to the
// ring's candidates one at a time until a backend accepts it.
func (g *Gateway) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	g.met.jobSubmits.Add(1)
	if g.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, wire.Errorf(wire.CodeDraining, "gateway draining"))
		return
	}
	var req wire.JobRequest
	if err := g.decode(w, r, &req); err != nil {
		g.badRequest(w, err)
		return
	}
	if err := wire.CheckAPI(req.API); err != nil {
		g.met.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, wire.Errorf(wire.CodeUnsupportedAPI, "%v", err))
		return
	}
	sreq := req.SolveRequest()
	m, gerr := g.requestMatrix(sreq)
	if gerr != nil {
		g.met.badRequests.Add(1)
		writeJSON(w, gerr.status, wire.Errorf(gerr.code, "%s", gerr.msg))
		return
	}
	it := prepare(sreq, m)
	// Forward the canonical matrix exactly like the solve path, so the
	// backend's cache and singleflight see the same key space either way.
	fwd := req
	fwd.Matrix, fwd.Rows = it.payload.Matrix, it.payload.Rows
	payload, err := json.Marshal(&fwd)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, wire.Errorf(wire.CodeInternal, "%v", err))
		return
	}

	ctx := r.Context()
	order, forceFrom := g.candidateOrder(it.fp.Hash)
	var last fwdResult
	for i, b := range order {
		fr := g.attempt(ctx, b, "/v1/jobs", payload, i >= forceFrom, r.Header)
		if ctx.Err() != nil {
			writeJSON(w, statusClientClosedRequest, wire.Errorf(wire.CodeClientGone, "%v", ctx.Err()))
			return
		}
		last = fr
		if !fr.authoritative() {
			if fr.err == nil {
				g.met.failovers.Add(1)
			}
			continue
		}
		if fr.status != http.StatusAccepted {
			// The backend made a decision a different shard would repeat
			// (bad request, quota, auth): relay it.
			relayJSON(w, fr.status, fr.body)
			return
		}
		var j wire.JobJSON
		if err := json.Unmarshal(fr.body, &j); err != nil {
			g.met.failed.Add(1)
			writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "bad backend job response: %v", err))
			return
		}
		e := &jobEntry{backend: b, backendID: j.ID, it: it}
		gwID := g.jobs.add(e)
		if err := e.rewriteJob(gwID, &j); err != nil {
			g.met.failed.Add(1)
			writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "%v", err))
			return
		}
		g.met.jobsAccepted.Add(1)
		writeJSON(w, http.StatusAccepted, &j)
		return
	}
	// No candidate accepted. Relay the most recent refusal (a 429/503 tells
	// the client the fleet's actual state) or fail coded.
	if last.err == nil && last.status != 0 {
		g.met.failed.Add(1)
		relayJSON(w, last.status, last.body)
		return
	}
	g.met.failed.Add(1)
	writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "all backends refused the job: %v", last.err))
}

// jobRoute resolves {id} to its route, answering the 404 itself. A route the
// gateway evicted or never knew is indistinguishable from a job that never
// existed — same contract as the backend's per-tenant visibility.
func (g *Gateway) jobRoute(w http.ResponseWriter, r *http.Request) (string, *jobEntry, bool) {
	id := r.PathValue("id")
	e := g.jobs.get(id)
	if e == nil {
		writeJSON(w, http.StatusNotFound, wire.Errorf(wire.CodeNotFound, "no such job"))
		return "", nil, false
	}
	return id, e, true
}

// proxyJobCall forwards one GET/DELETE to a job's home backend and rewrites
// the snapshot on success.
func (g *Gateway) proxyJobCall(w http.ResponseWriter, r *http.Request, method string) {
	gwID, e, ok := g.jobRoute(w, r)
	if !ok {
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), method,
		e.backend.url+"/v1/jobs/"+e.backendID, nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, wire.Errorf(wire.CodeInternal, "%v", err))
		return
	}
	copyAuth(req.Header, r.Header)
	resp, err := g.client.Do(req)
	if err != nil {
		g.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "job backend unreachable: %v", err))
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxRespBytes))
	if err != nil {
		g.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "job backend read: %v", err))
		return
	}
	if resp.StatusCode != http.StatusOK {
		relayJSON(w, resp.StatusCode, body)
		return
	}
	var j wire.JobJSON
	if err := json.Unmarshal(body, &j); err != nil {
		g.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "bad backend job response: %v", err))
		return
	}
	if err := e.rewriteJob(gwID, &j); err != nil {
		g.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, &j)
}

// handleJobGet proxies GET /v1/jobs/{id} to the job's home backend.
func (g *Gateway) handleJobGet(w http.ResponseWriter, r *http.Request) {
	g.proxyJobCall(w, r, http.MethodGet)
}

// handleJobCancel proxies DELETE /v1/jobs/{id} to the job's home backend.
func (g *Gateway) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	g.proxyJobCall(w, r, http.MethodDelete)
}

// handleJobEvents proxies the SSE stream from the job's home backend,
// frame by frame: live passthrough for status/progress, decode-and-lift for
// the terminal frame. The client's Last-Event-ID forwards so resumption
// works through the proxy.
func (g *Gateway) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	gwID, e, ok := g.jobRoute(w, r)
	if !ok {
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		e.backend.url+"/v1/jobs/"+e.backendID+"/events", nil)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, wire.Errorf(wire.CodeInternal, "%v", err))
		return
	}
	copyAuth(req.Header, r.Header)
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		req.Header.Set("Last-Event-ID", lid)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.met.failed.Add(1)
		writeJSON(w, http.StatusBadGateway, wire.Errorf(wire.CodeUpstream, "job backend unreachable: %v", err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxRespBytes))
		relayJSON(w, resp.StatusCode, body)
		return
	}
	g.met.jobStreams.Add(1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	// Relay frame by frame. A frame is a run of non-empty lines closed by a
	// blank line; only "data:" lines of terminal frames need rewriting.
	br := bufio.NewReader(resp.Body)
	var frame []string
	flushFrame := func() bool {
		if len(frame) == 0 {
			return true
		}
		terminal := false
		for i, line := range frame {
			data, ok := strings.CutPrefix(line, "data: ")
			if !ok {
				continue
			}
			var ev wire.JobEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil || ev.Job == nil {
				continue // status/progress frames pass through untouched
			}
			terminal = true
			if err := e.rewriteJob(gwID, ev.Job); err != nil {
				// Lifting failed mid-stream: surface it as the stream's
				// terminal event rather than a silent truncation.
				ev.Job.State = wire.JobFailed
				ev.Job.Result = nil
				ev.Job.Error = err.Error()
			}
			out, err := json.Marshal(&ev)
			if err != nil {
				return false
			}
			frame[i] = "data: " + string(out)
		}
		for _, line := range frame {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return false
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return false
		}
		rc.Flush()
		frame = frame[:0]
		return !terminal
	}
	for {
		line, err := br.ReadString('\n')
		line = strings.TrimRight(line, "\r\n")
		if line != "" {
			frame = append(frame, line)
		} else if !flushFrame() {
			return
		}
		if err != nil {
			flushFrame() // backend closed mid-frame: relay what arrived
			return
		}
	}
}
