package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bitmat"
	"repro/internal/server"
	"repro/internal/wire"
)

const fig1b = `101100
010011
101010
010101
111000
000111`

// testCluster is an in-process fleet: n real ebmfd servers behind httptest
// listeners, fronted by one gateway.
type testCluster struct {
	servers  []*server.Server
	backends []*httptest.Server
	gw       *Gateway
	ts       *httptest.Server
}

// newTestCluster builds the fleet. Probing and hedging default to off so
// tests are hermetic; pass explicit gcfg values to enable them.
func newTestCluster(t *testing.T, n int, gcfg Config) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		s := server.New(server.Config{MaxQueue: 256})
		bts := httptest.NewServer(s.Handler())
		t.Cleanup(bts.Close)
		tc.servers = append(tc.servers, s)
		tc.backends = append(tc.backends, bts)
		gcfg.Backends = append(gcfg.Backends, bts.URL)
	}
	if gcfg.ProbeInterval == 0 {
		gcfg.ProbeInterval = -1
	}
	if gcfg.HedgeAfter == 0 {
		gcfg.HedgeAfter = -1
	}
	gw, err := New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	tc.gw = gw
	tc.ts = httptest.NewServer(gw.Handler())
	t.Cleanup(tc.ts.Close)
	return tc
}

// fleetSolves sums the underlying pipeline runs across every backend's
// cache — the fleet-wide dedup metric.
func (tc *testCluster) fleetSolves() int64 {
	var total int64
	for _, s := range tc.servers {
		total += s.Cache().Stats().Solves
	}
	return total
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeResult(t *testing.T, data []byte) *wire.ResultJSON {
	t.Helper()
	var res wire.ResultJSON
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("bad result JSON: %v\n%s", err, data)
	}
	return &res
}

func permute(m *bitmat.Matrix, rng *rand.Rand) *bitmat.Matrix {
	rp, cp := rng.Perm(m.Rows()), rng.Perm(m.Cols())
	out := bitmat.New(m.Rows(), m.Cols())
	m.ForEachOne(func(i, j int) { out.Set(rp[i], cp[j], true) })
	return out
}

func TestGatewaySolveAndPermutedResubmissionHits(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	resp, body := postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	first := decodeResult(t, body)
	if first.Depth != 5 || !first.Optimal || first.CacheHit {
		t.Fatalf("cold solve: %+v", first)
	}
	if first.Fingerprint == "" {
		t.Fatalf("no fingerprint in gateway response")
	}
	if len(first.Partition) != 5 {
		t.Fatalf("partition has %d rects, want 5", len(first.Partition))
	}
	// The lifted partition must index the *client's* matrix and cover it.
	m := bitmat.MustParse(fig1b)
	assertPartitionCovers(t, m, first.Partition)

	// A permuted resubmission must be a cache hit through the gateway with
	// the same depth and fingerprint, without a second pipeline solve
	// anywhere in the fleet.
	rng := rand.New(rand.NewSource(7))
	p := permute(m, rng)
	resp, body = postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: p.String()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	second := decodeResult(t, body)
	if !second.CacheHit || second.Depth != 5 || second.Fingerprint != first.Fingerprint {
		t.Fatalf("permuted resubmission: %+v", second)
	}
	if second.SATCalls != 0 || second.PackNS != 0 || second.SATNS != 0 {
		t.Fatalf("cache hit did not zero solver stages: %+v", second)
	}
	assertPartitionCovers(t, p, second.Partition)
	if n := tc.fleetSolves(); n != 1 {
		t.Fatalf("fleet ran %d pipeline solves, want 1", n)
	}
	snap := tc.gw.MetricsSnapshot()
	if snap.Cache.Local.Hits+snap.Cache.RemoteHits == 0 {
		t.Fatalf("no cache hit recorded in gateway metrics: %+v", snap)
	}
}

// assertPartitionCovers re-validates a wire partition against the request
// matrix: disjoint rectangles of ones covering every one.
func assertPartitionCovers(t *testing.T, m *bitmat.Matrix, rects []wire.RectJSON) {
	t.Helper()
	covered := bitmat.New(m.Rows(), m.Cols())
	for _, r := range rects {
		for _, i := range r.Rows {
			for _, j := range r.Cols {
				if !m.Get(i, j) {
					t.Fatalf("rect covers zero at (%d,%d)", i, j)
				}
				if covered.Get(i, j) {
					t.Fatalf("rects overlap at (%d,%d)", i, j)
				}
				covered.Set(i, j, true)
			}
		}
	}
	if !covered.Equal(m) {
		t.Fatalf("partition does not cover the matrix")
	}
}

// TestGatewayConcurrentPermutationsSingleSolveFleetWide is the subsystem's
// acceptance test: 64 concurrent requests, each a different row/column
// permutation of one matrix, arrive at a 3-backend cluster; consistent
// fingerprint routing must land them on one shard whose cache/singleflight
// performs exactly one pipeline solve fleet-wide.
func TestGatewayConcurrentPermutationsSingleSolveFleetWide(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	m := bitmat.MustParse(fig1b)
	rng := rand.New(rand.NewSource(2024))

	const n = 64
	bodies := make([][]byte, n)
	for i := range bodies {
		data, err := json.Marshal(wire.SolveRequest{Matrix: permute(m, rng).String()})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = data
	}

	client := tc.ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: n}
	var wg sync.WaitGroup
	depths := make([]int, n)
	hits := make([]bool, n)
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := client.Post(tc.ts.URL+"/v1/solve", "application/json",
				bytes.NewReader(bodies[i]))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var res wire.ResultJSON
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			depths[i] = res.Depth
			hits[i] = res.CacheHit
		}(i)
	}
	close(start)
	wg.Wait()

	misses := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if depths[i] != 5 {
			t.Fatalf("request %d: depth %d, want 5", i, depths[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d responses were not cache/singleflight hits, want exactly 1 (the leader)", misses)
	}
	if n := tc.fleetSolves(); n != 1 {
		t.Fatalf("fleet ran %d pipeline solves for 64 concurrent permutations, want 1", n)
	}
}

// TestGatewayBackendKilledMidLoadLosesZeroRequests is the resilience
// acceptance test: under a stream of distinct solves spread across three
// shards, one backend is killed abruptly (established connections severed,
// listener closed). Every request must still succeed via ring failover.
func TestGatewayBackendKilledMidLoadLosesZeroRequests(t *testing.T) {
	tc := newTestCluster(t, 3, Config{BreakerThreshold: 2})
	rng := rand.New(rand.NewSource(41))
	const workers = 8
	const perWorker = 12
	bodies := make([][]byte, workers*perWorker)
	for i := range bodies {
		m := bitmat.Random(rng, 6, 6, 0.5)
		data, err := json.Marshal(wire.SolveRequest{Matrix: m.String()})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = data
	}

	var completed atomic.Int64
	killAt := int64(len(bodies) / 3)
	killed := make(chan struct{})
	go func() {
		for completed.Load() < killAt {
			time.Sleep(time.Millisecond)
		}
		// Abrupt death: sever live connections first so in-flight gateway
		// attempts see hard errors, then stop the listener.
		tc.backends[1].CloseClientConnections()
		tc.backends[1].Close()
		close(killed)
	}()

	client := tc.ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: workers}
	errs := make([]error, len(bodies))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				i := w*perWorker + k
				resp, err := client.Post(tc.ts.URL+"/v1/solve", "application/json",
					bytes.NewReader(bodies[i]))
				if err != nil {
					errs[i] = err
					completed.Add(1)
					continue
				}
				var res wire.ResultJSON
				err = json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				switch {
				case err != nil:
					errs[i] = err
				case resp.StatusCode != http.StatusOK:
					errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				case !res.Optimal:
					errs[i] = fmt.Errorf("not optimal: %+v", res)
				}
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	<-killed

	lost := 0
	for i, err := range errs {
		if err != nil {
			lost++
			t.Errorf("request %d lost: %v", i, err)
		}
	}
	if lost > 0 {
		t.Fatalf("%d/%d requests lost after killing one backend", lost, len(bodies))
	}
}

func TestGatewayBatchSplitsAcrossShardsAndMergesInOrder(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	m := bitmat.MustParse(fig1b)
	rng := rand.New(rand.NewSource(3))
	req := wire.BatchRequest{Requests: []wire.SolveRequest{
		{Matrix: fig1b},
		{Matrix: "not a matrix"},
		{Matrix: "10\n01"},
		{Rows: [][]int{}},                  // zero-dimension: per-item 400-shaped error
		{Matrix: permute(m, rng).String()}, // equivalent to item 0
		{Matrix: "1"},
	}}
	resp, body := postJSON(t, tc.ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br wire.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 6 {
		t.Fatalf("%d results, want 6", len(br.Results))
	}
	if br.Results[0].Result == nil || br.Results[0].Result.Depth != 5 {
		t.Fatalf("item 0: %+v", br.Results[0])
	}
	if br.Results[1].Error == "" || br.Results[1].Result != nil {
		t.Fatalf("item 1 should be an error: %+v", br.Results[1])
	}
	if br.Results[2].Result == nil || br.Results[2].Result.Depth != 2 {
		t.Fatalf("item 2: %+v", br.Results[2])
	}
	if br.Results[3].Error == "" {
		t.Fatalf("zero-dimension item should be an error: %+v", br.Results[3])
	}
	if br.Results[4].Result == nil || br.Results[4].Result.Depth != 5 {
		t.Fatalf("item 4: %+v", br.Results[4])
	}
	if br.Results[4].Result.Fingerprint != br.Results[0].Result.Fingerprint {
		t.Fatalf("equivalent batch items got different fingerprints")
	}
	if br.Results[5].Result == nil || br.Results[5].Result.Depth != 1 {
		t.Fatalf("item 5: %+v", br.Results[5])
	}
	// The two distinct nontrivial patterns plus "1" → at most 3 pipeline
	// solves fleet-wide (the permuted duplicate must dedup onto item 0).
	if n := tc.fleetSolves(); n > 3 {
		t.Fatalf("fleet ran %d pipeline solves for 3 distinct patterns", n)
	}
}

func TestGatewayLocalCacheServesWhenAllBackendsDown(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	resp, body := postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming solve: %d %s", resp.StatusCode, body)
	}
	for _, b := range tc.backends {
		b.CloseClientConnections()
		b.Close()
	}
	// A permuted equivalent must still be answered, from the gateway-local
	// proved-optimal LRU, with the whole fleet gone.
	m := bitmat.MustParse(fig1b)
	p := permute(m, rand.New(rand.NewSource(11)))
	resp, body = postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: p.String()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("local-cache solve: %d %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if !res.CacheHit || res.Depth != 5 || !res.Optimal {
		t.Fatalf("local-cache hit: %+v", res)
	}
	assertPartitionCovers(t, p, res.Partition)
	if snap := tc.gw.MetricsSnapshot(); snap.Cache.Local.Hits != 1 {
		t.Fatalf("local cache hits = %d, want 1", snap.Cache.Local.Hits)
	}
	// A pattern the cache has never seen must fail with 502 — every
	// candidate backend refused — as a structured wire error.
	resp, body = postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: "110\n011\n101"})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("unseen pattern with fleet down: %d, want 502", resp.StatusCode)
	}
	var e wire.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("502 body not a structured wire error: %s", body)
	}
}

func TestGatewayHedgesToSecondShardWhenHomeStalls(t *testing.T) {
	// Two custom backends: real ebmfd handlers, each wrappable into a stall
	// (hold the request open until the gateway abandons it). The stall must
	// drain the request body first — the server only notices a client
	// disconnect (and cancels r.Context()) once the body has been consumed —
	// and `release` unblocks any straggler before the cleanup closes the
	// listeners.
	stall := make([]atomic.Bool, 2)
	release := make(chan struct{})
	var urls []string
	for i := 0; i < 2; i++ {
		s := server.New(server.Config{})
		inner := s.Handler()
		idx := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if stall[idx].Load() && strings.HasPrefix(r.URL.Path, "/v1/solve") {
				io.Copy(io.Discard, r.Body)
				select {
				case <-r.Context().Done():
				case <-release:
				}
				return
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	t.Cleanup(func() { close(release) }) // runs before the ts.Close cleanups
	gw, err := New(Config{
		Backends:      urls,
		HedgeAfter:    30 * time.Millisecond,
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)

	// Find the home shard for fig1b and stall it: the hedge must win on the
	// other backend well before any solve timeout.
	fp := bitmat.ComputeFingerprint(bitmat.MustParse(fig1b))
	home := gw.ring.candidates(fp.Hash)[0]
	stall[home].Store(true)

	resp, body := postJSON(t, gts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged solve: %d %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if res.Depth != 5 || !res.Optimal {
		t.Fatalf("hedged solve result: %+v", res)
	}
	snap := gw.MetricsSnapshot()
	if snap.Routing.Hedges == 0 {
		t.Fatalf("no hedge recorded: %+v", snap.Routing)
	}
	// Losing a hedge race is not a backend failure: the stalled-but-alive
	// home shard's attempt was canceled by the gateway, and that must not
	// feed its breaker — otherwise routine hedging would open breakers on
	// healthy shards and break cache-affinity routing.
	for _, b := range snap.Backends {
		if b.Failures != 0 || b.Breaker != "closed" {
			t.Fatalf("canceled hedge attempt penalized a backend: %+v", b)
		}
	}
}

func TestGatewayBadRequestsAreStructured400s(t *testing.T) {
	tc := newTestCluster(t, 2, Config{MaxMatrixEntries: 16})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"both forms", `{"matrix":"1","rows":[[1]]}`, http.StatusBadRequest},
		{"bad chars", `{"matrix":"10\n2x"}`, http.StatusBadRequest},
		{"ragged rows", `{"rows":[[1,0],[1]]}`, http.StatusBadRequest},
		{"zero-dim empty rows", `{"rows":[]}`, http.StatusBadRequest},
		{"zero-dim empty row", `{"rows":[[]]}`, http.StatusBadRequest},
		{"non-binary rows", `{"rows":[[1,2]]}`, http.StatusBadRequest},
		{"unknown field", `{"matrecks":"1"}`, http.StatusBadRequest},
		{"too large", `{"matrix":"` + strings.Repeat("11111\\n", 5) + `"}`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
	}
	for _, tc2 := range cases {
		resp, err := http.Post(tc.ts.URL+"/v1/solve", "application/json", strings.NewReader(tc2.body))
		if err != nil {
			t.Fatalf("%s: %v", tc2.name, err)
		}
		var e wire.ErrorResponse
		err = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != tc2.want {
			t.Errorf("%s: status %d, want %d", tc2.name, resp.StatusCode, tc2.want)
		}
		if err != nil || e.Error == "" {
			t.Errorf("%s: body is not a structured wire error (%v)", tc2.name, err)
		}
	}
	// None of these must have touched a backend.
	for i, s := range tc.servers {
		if s.Cache().Stats().Solves != 0 {
			t.Errorf("backend %d ran a solve for an invalid request", i)
		}
	}
}

func TestGatewayRelaysAuthoritativeBackendErrors(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	// An unknown portfolio strategy passes the gateway untouched and is
	// rejected by the shard; the gateway must relay the 400 and its body.
	req := wire.SolveRequest{
		Matrix:  "11\n01",
		Options: &wire.SolveOptions{PortfolioStrategies: []string{"bogus"}},
	}
	resp, body := postJSON(t, tc.ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want relayed 400: %s", resp.StatusCode, body)
	}
	var e wire.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("relayed 400 body not structured: %s", body)
	}
}

func TestGatewayAllZeroMatrixDegenerateCanonical(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	resp, body := postJSON(t, tc.ts.URL+"/v1/solve",
		wire.SolveRequest{Rows: [][]int{{0, 0, 0}, {0, 0, 0}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("all-zero solve: %d %s", resp.StatusCode, body)
	}
	res := decodeResult(t, body)
	if res.Depth != 0 || !res.Optimal {
		t.Fatalf("all-zero result: %+v", res)
	}
}

func TestGatewayHealthzAndDrain(t *testing.T) {
	tc := newTestCluster(t, 2, Config{})
	resp, body := httpGet(t, tc.ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	tc.gw.BeginDrain()
	resp, body = httpGet(t, tc.ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte(`"draining"`)) {
		t.Fatalf("draining healthz: %d %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: "1"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve during drain: %d, want 503", resp.StatusCode)
	}
}

func TestGatewayHealthProbesMarkDeadBackends(t *testing.T) {
	s := server.New(server.Config{})
	bts := httptest.NewServer(s.Handler())
	gw, err := New(Config{
		Backends:      []string{bts.URL},
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gts := httptest.NewServer(gw.Handler())
	t.Cleanup(gts.Close)

	bts.CloseClientConnections()
	bts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := httpGet(t, gts.URL+"/v1/healthz")
		if resp.StatusCode == http.StatusServiceUnavailable &&
			bytes.Contains(body, []byte(`"no_healthy_backends"`)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never noticed the dead fleet: %d %s", resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	snap := gw.MetricsSnapshot()
	if len(snap.Backends) != 1 || snap.Backends[0].Healthy {
		t.Fatalf("metrics still report the dead backend healthy: %+v", snap.Backends)
	}
}

func TestGatewayMetricsShape(t *testing.T) {
	tc := newTestCluster(t, 3, Config{})
	postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	postJSON(t, tc.ts.URL+"/v1/solve", wire.SolveRequest{Matrix: fig1b})
	resp, body := httpGet(t, tc.ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad metrics JSON: %v\n%s", err, body)
	}
	if snap.Requests.Solve != 2 {
		t.Fatalf("solve count = %d, want 2", snap.Requests.Solve)
	}
	if snap.Cache.Local.Hits != 1 {
		t.Fatalf("local hits = %d, want 1 (identical resubmission)", snap.Cache.Local.Hits)
	}
	if len(snap.Backends) != 3 {
		t.Fatalf("%d backends in metrics, want 3", len(snap.Backends))
	}
	for _, b := range snap.Backends {
		if b.Breaker != "closed" || !b.Healthy {
			t.Fatalf("backend state: %+v", b)
		}
	}
}

func httpGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}
